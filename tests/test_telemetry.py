"""Telemetry registry and report units: counters, spans, traces, round-trips.

Covers the process-local :class:`~repro.telemetry.MetricsRegistry`
contract (disabled no-ops, bounded span ring, cumulative-snapshot merge
semantics) and the report layer (JSON round-trip, Chrome trace-event
schema, terminal summary). Integration through the cluster runtime lives
in ``test_telemetry_cluster.py``.
"""

from __future__ import annotations

import json

import pytest

from repro.telemetry import (
    BYTE_BUCKETS,
    TIME_BUCKETS,
    MetricsRegistry,
    RunReport,
    build_report,
    chrome_trace,
    current_label,
    load_report,
    metrics,
    pop_label,
    push_label,
    summarize,
    write_metrics,
    write_trace,
)
from repro.telemetry.core import _NULL_SPAN


@pytest.fixture(autouse=True)
def clean_global_registry():
    """The module singleton must never leak state between tests."""
    metrics.reset()
    metrics.set_enabled(False)
    yield
    metrics.reset()
    metrics.set_enabled(False)


class TestRegistry:
    def test_counters_gauges_histograms(self):
        reg = MetricsRegistry(enabled=True)
        reg.inc("a")
        reg.inc("a", 2.5)
        reg.set_gauge("g", 1.0)
        reg.set_gauge("g", 7.0)  # last write wins
        reg.observe("h", 0.02)
        reg.observe("h", 500.0)  # beyond the last edge -> overflow slot
        assert reg.counter_value("a") == 3.5
        assert reg.counter_value("never") == 0.0
        assert reg.gauge_value("g") == 7.0
        assert reg.gauge_value("never") is None
        hist = reg.snapshot()["histograms"]["h"]
        assert hist["count"] == 2
        assert hist["sum"] == pytest.approx(500.02)
        assert hist["min"] == 0.02
        assert hist["max"] == 500.0
        assert hist["counts"][-1] == 1  # the overflow observation
        assert sum(hist["counts"]) == 2

    def test_histogram_bucket_assignment(self):
        reg = MetricsRegistry(enabled=True)
        reg.observe("b", 100.0, buckets=BYTE_BUCKETS)
        hist = reg.snapshot()["histograms"]["b"]
        # 100 bytes lands in the first bucket with edge >= 100 (256)
        assert hist["counts"][BYTE_BUCKETS.index(256)] == 1

    def test_disabled_is_a_no_op(self):
        reg = MetricsRegistry(enabled=False)
        reg.inc("a")
        reg.set_gauge("g", 1.0)
        reg.observe("h", 0.5)
        with reg.span("s"):
            pass
        reg.record_span("s2", 0.0, 1.0)
        reg.merge_source("w0", {"counters": {"x": 1}})
        snap = reg.snapshot()
        assert snap["counters"] == {}
        assert snap["gauges"] == {}
        assert snap["histograms"] == {}
        assert snap["spans"] == []
        assert reg.sources() == {}
        # and the disabled span is the shared singleton: no allocation
        assert reg.span("s") is _NULL_SPAN

    def test_span_records_name_duration_attrs(self):
        reg = MetricsRegistry(enabled=True)
        with reg.span("work", task=3):
            pass
        ((name, start, duration, attrs),) = reg.snapshot()["spans"]
        assert name == "work"
        assert duration >= 0.0
        assert start > 0.0
        assert attrs == {"task": 3}

    def test_span_ring_is_bounded(self):
        reg = MetricsRegistry(enabled=True, span_capacity=8)
        for i in range(20):
            reg.record_span(f"s{i}", float(i), 0.1)
        spans = reg.snapshot()["spans"]
        assert len(spans) == 8
        assert spans[0][0] == "s12"  # oldest events fell off the back
        assert spans[-1][0] == "s19"

    def test_snapshot_without_spans(self):
        reg = MetricsRegistry(enabled=True)
        reg.record_span("s", 0.0, 1.0)
        assert "spans" not in reg.snapshot(include_spans=False)
        assert reg.snapshot()["spans"]

    def test_merge_source_replaces_cumulative_snapshots(self):
        reg = MetricsRegistry(enabled=True)
        reg.merge_source("w0", {"counters": {"x": 5}, "spans": [["a", 0.0, 1.0, {}]]})
        reg.merge_source("w0", {"counters": {"x": 9}, "spans": [["b", 1.0, 1.0, {}]]})
        snap = reg.sources()["w0"]
        assert snap["counters"]["x"] == 9  # replaced, not summed to 14
        assert [s[0] for s in snap["spans"]] == ["b"]

    def test_spanless_heartbeat_snapshot_keeps_last_spans(self):
        reg = MetricsRegistry(enabled=True)
        reg.merge_source("w0", {"counters": {"x": 5}, "spans": [["a", 0.0, 1.0, {}]]})
        # the cheap heartbeat form carries no spans: counters update but
        # the previously-shipped spans must survive
        reg.merge_source("w0", {"counters": {"x": 9}})
        snap = reg.sources()["w0"]
        assert snap["counters"]["x"] == 9
        assert [s[0] for s in snap["spans"]] == ["a"]

    def test_reset_keeps_the_enabled_flag(self):
        reg = MetricsRegistry(enabled=True)
        reg.inc("a")
        reg.meta["source"] = "w0"
        reg.reset()
        assert reg.enabled
        assert reg.counter_value("a") == 0.0
        assert reg.meta == {}

    def test_label_stack_is_nested(self):
        assert current_label() is None
        push_label("gis")
        push_label("inner")
        assert current_label() == "inner"
        pop_label()
        assert current_label() == "gis"
        pop_label()
        assert current_label() is None
        pop_label()  # empty stack: no-op, no raise


class TestReport:
    def _sample_registry(self) -> MetricsRegistry:
        reg = MetricsRegistry(enabled=True)
        reg.inc("tasks", 3)
        reg.observe("latency", 0.02)
        reg.set_gauge("util", 0.5)
        reg.record_span("driver.work", 10.0, 1.5, phase="p1")
        reg.merge_source(
            "pipe:w0",
            {
                "meta": {"role": "ingredients"},
                "counters": {"tasks": 2},
                "gauges": {},
                "histograms": {},
                "spans": [["task:train", 10.2, 0.7, {"task": 0}]],
            },
        )
        return reg

    def test_round_trip_through_json(self, tmp_path):
        report = build_report(self._sample_registry(), command="test")
        path = tmp_path / "report.json"
        write_metrics(report, path)
        loaded = load_report(path)
        assert loaded.meta["command"] == "test"
        assert loaded.to_dict() == json.loads(json.dumps(report.to_dict()))
        assert loaded.counters_total()["tasks"] == 5  # driver 3 + worker 2

    def test_histogram_total_merges_compatible_buckets(self):
        reg = self._sample_registry()
        reg.merge_source(
            "pipe:w1",
            {
                "counters": {},
                "gauges": {},
                "histograms": {
                    "latency": {
                        "buckets": list(TIME_BUCKETS),
                        "counts": [0] * (len(TIME_BUCKETS) + 1),
                        "sum": 0.5,
                        "count": 1,
                        "min": 0.5,
                        "max": 0.5,
                    }
                },
            },
        )
        report = build_report(reg)
        merged = report.histogram_total("latency")
        assert merged["count"] == 2
        assert merged["sum"] == pytest.approx(0.52)
        assert merged["max"] == 0.5
        assert report.histogram_total("no-such-histogram") is None

    def test_chrome_trace_schema(self):
        trace = chrome_trace(build_report(self._sample_registry()))
        assert set(trace) == {"traceEvents", "displayTimeUnit"}
        events = trace["traceEvents"]
        meta_events = [e for e in events if e["ph"] == "M"]
        x_events = [e for e in events if e["ph"] == "X"]
        # one process_name per source (driver + 1 worker), one track each
        names = [e["args"]["name"] for e in meta_events if e["name"] == "process_name"]
        assert names == ["driver", "pipe:w0"]
        assert len({e["pid"] for e in meta_events}) == 2
        for event in x_events:
            assert set(event) >= {"name", "cat", "ph", "ts", "dur", "pid", "tid"}
            assert event["ts"] >= 0.0  # rebased to the earliest span
            assert event["dur"] >= 0.0
        # the driver span started 0.2s before the worker span: rebasing
        # puts the driver at ts=0 and the worker at +0.2s (in µs)
        by_name = {e["name"]: e for e in x_events}
        assert by_name["driver.work"]["ts"] == 0.0
        assert by_name["task:train"]["ts"] == pytest.approx(0.2e6)

    def test_write_trace_is_loadable_json(self, tmp_path):
        path = tmp_path / "trace.json"
        write_trace(build_report(self._sample_registry()), path)
        trace = json.loads(path.read_text())
        assert isinstance(trace["traceEvents"], list)

    def test_summarize_renders_every_section(self):
        text = summarize(build_report(self._sample_registry(), command="soup"))
        for needle in ("driver + 1 worker source", "[soup]", "tasks", "latency",
                       "util", "driver.work", "role=ingredients"):
            assert needle in text, needle

    def test_empty_report_summarizes(self):
        report = RunReport()
        assert "driver + 0 worker source(s)" in summarize(report)
        # only the driver's track metadata, no span events
        events = chrome_trace(report)["traceEvents"]
        assert all(e["ph"] == "M" for e in events)
