"""CSR structure: construction, transformations, normalised operators."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graph import CSR, build_csr, edges_to_csr


@pytest.fixture
def triangle():
    """3-cycle, symmetric: 0-1, 1-2, 2-0."""
    return build_csr([(0, 1), (1, 2), (2, 0)], 3, symmetrize=True)


class TestConstruction:
    def test_edge_count_symmetrized(self, triangle):
        assert triangle.num_edges == 6

    def test_indptr_shape(self, triangle):
        assert triangle.indptr.shape == (4,)

    def test_dedup(self):
        csr = edges_to_csr(np.array([0, 0, 0]), np.array([1, 1, 1]), 2, dedup=True)
        assert csr.num_edges == 1

    def test_no_dedup_keeps_multiplicity(self):
        csr = edges_to_csr(np.array([0, 0]), np.array([1, 1]), 2, dedup=False)
        assert csr.num_edges == 2

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            edges_to_csr(np.array([0]), np.array([5]), 2)

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            edges_to_csr(np.array([0, 1]), np.array([1]), 2)

    def test_empty_graph(self):
        csr = edges_to_csr(np.empty(0, np.int64), np.empty(0, np.int64), 4)
        assert csr.num_nodes == 4 and csr.num_edges == 0

    def test_indices_sorted_within_rows(self, rng):
        src = rng.integers(0, 20, size=100)
        dst = rng.integers(0, 20, size=100)
        csr = edges_to_csr(src, dst, 20)
        for i in range(20):
            row = csr.row(i)
            assert np.all(np.diff(row) > 0)  # sorted and deduped

    def test_invalid_indptr_rejected(self):
        with pytest.raises(ValueError):
            CSR(np.array([0, 2, 1]), np.array([0, 1]), 2)

    def test_edge_list_roundtrip(self, rng):
        src = rng.integers(0, 15, size=60)
        dst = rng.integers(0, 15, size=60)
        csr = edges_to_csr(src, dst, 15, dedup=False)
        s2, d2 = csr.edge_list()
        a = set(zip(src.tolist(), dst.tolist()))
        b = set(zip(s2.tolist(), d2.tolist()))
        assert a == b


class TestDegreesAndTransforms:
    def test_in_degrees(self, triangle):
        np.testing.assert_array_equal(triangle.in_degrees(), [2, 2, 2])

    def test_out_degrees_symmetric_graph(self, triangle):
        np.testing.assert_array_equal(triangle.out_degrees(), triangle.in_degrees())

    def test_self_loops_added_once(self, triangle):
        looped = triangle.with_self_loops()
        assert looped.num_edges == 9
        assert looped.with_self_loops().num_edges == 9  # idempotent

    def test_without_self_loops(self, triangle):
        looped = triangle.with_self_loops()
        assert looped.without_self_loops().num_edges == 6

    def test_has_self_loops(self, triangle):
        assert not triangle.has_self_loops()
        assert triangle.with_self_loops().has_self_loops()

    def test_symmetrized_directed_edge(self):
        csr = build_csr([(0, 1)], 2, symmetrize=False)
        assert not csr.is_symmetric()
        assert csr.symmetrized().is_symmetric()

    def test_reverse(self):
        csr = build_csr([(0, 1)], 2, symmetrize=False)
        src, dst = csr.reverse().edge_list()
        assert (src[0], dst[0]) == (1, 0)

    def test_to_scipy_matches(self, triangle):
        mat = triangle.to_scipy().toarray()
        expected = np.array([[0, 1, 1], [1, 0, 1], [1, 1, 0]], dtype=float)
        np.testing.assert_array_equal(mat, expected)


class TestNormalisedOperators:
    def test_gcn_matrix_symmetric_normalisation(self, triangle):
        mat = triangle.gcn_matrix().toarray()
        # triangle + self loops: every node has degree 3 -> all entries 1/3
        np.testing.assert_allclose(mat, np.full((3, 3), 1.0 / 3.0))

    def test_gcn_matrix_spectrum_bounded(self, rng):
        # the symmetric normalisation bounds the spectral radius by 1
        src = rng.integers(0, 30, 200)
        dst = rng.integers(0, 30, 200)
        csr = edges_to_csr(np.concatenate([src, dst]), np.concatenate([dst, src]), 30)
        mat = csr.gcn_matrix().toarray()
        np.testing.assert_allclose(mat, mat.T, atol=1e-12)
        eigvals = np.linalg.eigvalsh(mat)
        assert np.abs(eigvals).max() <= 1.0 + 1e-9

    def test_gcn_handles_isolated_nodes(self):
        csr = build_csr([(0, 1)], 4, symmetrize=True)  # nodes 2,3 isolated
        mat = csr.gcn_matrix().toarray()
        assert np.isfinite(mat).all()
        np.testing.assert_allclose(mat[2, 2], 1.0)  # self loop only

    def test_mean_matrix_rows_sum_to_one(self, triangle):
        rows = np.asarray(triangle.mean_matrix().sum(axis=1)).ravel()
        np.testing.assert_allclose(rows, np.ones(3))

    def test_mean_matrix_isolated_row_zero(self):
        csr = build_csr([(0, 1)], 3, symmetrize=True)
        rows = np.asarray(csr.mean_matrix().sum(axis=1)).ravel()
        np.testing.assert_allclose(rows, [1.0, 1.0, 0.0])

    def test_mean_matrix_with_loops_never_zero(self):
        csr = build_csr([(0, 1)], 3, symmetrize=True)
        rows = np.asarray(csr.mean_matrix(add_self_loops=True).sum(axis=1)).ravel()
        np.testing.assert_allclose(rows, np.ones(3))


class TestInducedSubgraph:
    def test_keeps_internal_edges(self, triangle):
        sub, nodes = triangle.induced_subgraph(np.array([0, 1]))
        assert sub.num_nodes == 2
        assert sub.num_edges == 2  # 0-1 both directions

    def test_drops_external_edges(self):
        path = build_csr([(0, 1), (1, 2), (2, 3)], 4, symmetrize=True)
        sub, _ = path.induced_subgraph(np.array([0, 3]))
        assert sub.num_edges == 0

    def test_relabelling_order(self):
        path = build_csr([(0, 1), (1, 2)], 3, symmetrize=True)
        sub, _ = path.induced_subgraph(np.array([2, 1]))  # note the order
        src, dst = sub.edge_list()
        # edge between new ids 0 (=old 2) and 1 (=old 1), both directions
        assert set(zip(src.tolist(), dst.tolist())) == {(0, 1), (1, 0)}

    def test_duplicate_nodes_rejected(self, triangle):
        with pytest.raises(ValueError):
            triangle.induced_subgraph(np.array([0, 0]))

    def test_full_subgraph_identity(self, triangle):
        sub, _ = triangle.induced_subgraph(np.arange(3))
        np.testing.assert_array_equal(sub.indptr, triangle.indptr)
        np.testing.assert_array_equal(sub.indices, triangle.indices)


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(2, 25),
    m=st.integers(0, 80),
    seed=st.integers(0, 2**31 - 1),
)
def test_property_csr_invariants(n, m, seed):
    """Hypothesis: any random edge set yields a structurally valid CSR."""
    rng = np.random.default_rng(seed)
    src = rng.integers(0, n, size=m)
    dst = rng.integers(0, n, size=m)
    csr = edges_to_csr(src, dst, n)
    assert csr.indptr[0] == 0 and csr.indptr[-1] == csr.num_edges
    assert np.all(np.diff(csr.indptr) >= 0)
    assert csr.in_degrees().sum() == csr.num_edges
    assert csr.out_degrees().sum() == csr.num_edges
    sym = csr.symmetrized()
    assert sym.is_symmetric()


@settings(max_examples=20, deadline=None)
@given(n=st.integers(3, 20), seed=st.integers(0, 2**31 - 1))
def test_property_subgraph_edge_subset(n, seed):
    """Hypothesis: induced subgraph edges map to edges of the parent."""
    rng = np.random.default_rng(seed)
    src = rng.integers(0, n, size=4 * n)
    dst = rng.integers(0, n, size=4 * n)
    csr = edges_to_csr(src, dst, n)
    keep = rng.choice(n, size=max(1, n // 2), replace=False)
    sub, nodes = csr.induced_subgraph(keep)
    parent_edges = set(zip(*[a.tolist() for a in csr.edge_list()]))
    for s, d in zip(*sub.edge_list()):
        assert (nodes[s], nodes[d]) in parent_edges
