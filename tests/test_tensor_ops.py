"""Dense tensor operations: forward correctness + gradcheck for every op."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.tensor import Tensor, concat, gradcheck, maximum, minimum, stack, where


def t(data, grad=True):
    return Tensor(np.asarray(data, dtype=np.float64), requires_grad=grad)


def rand(rng, *shape):
    return Tensor(rng.normal(size=shape), requires_grad=True)


class TestForward:
    def test_add(self):
        out = t([1.0, 2.0]) + t([3.0, 4.0])
        np.testing.assert_allclose(out.data, [4.0, 6.0])

    def test_add_scalar(self):
        out = t([1.0, 2.0]) + 1.5
        np.testing.assert_allclose(out.data, [2.5, 3.5])

    def test_radd(self):
        out = 2.0 + t([1.0])
        np.testing.assert_allclose(out.data, [3.0])

    def test_sub(self):
        np.testing.assert_allclose((t([5.0]) - t([2.0])).data, [3.0])

    def test_rsub(self):
        np.testing.assert_allclose((10.0 - t([4.0])).data, [6.0])

    def test_mul(self):
        np.testing.assert_allclose((t([2.0, 3.0]) * t([4.0, 5.0])).data, [8.0, 15.0])

    def test_div(self):
        np.testing.assert_allclose((t([8.0]) / t([2.0])).data, [4.0])

    def test_rdiv(self):
        np.testing.assert_allclose((1.0 / t([4.0])).data, [0.25])

    def test_neg(self):
        np.testing.assert_allclose((-t([1.0, -2.0])).data, [-1.0, 2.0])

    def test_pow(self):
        np.testing.assert_allclose((t([2.0, 3.0]) ** 2).data, [4.0, 9.0])

    def test_pow_tensor_exponent_rejected(self):
        with pytest.raises(TypeError):
            t([2.0]) ** t([2.0])

    def test_matmul_2d(self, rng):
        a, b = rng.normal(size=(3, 4)), rng.normal(size=(4, 2))
        np.testing.assert_allclose((t(a) @ t(b)).data, a @ b)

    def test_matmul_vec(self, rng):
        a, b = rng.normal(size=4), rng.normal(size=4)
        np.testing.assert_allclose((t(a) @ t(b)).data, a @ b)

    def test_broadcast_add(self):
        out = t([[1.0, 2.0], [3.0, 4.0]]) + t([10.0, 20.0])
        np.testing.assert_allclose(out.data, [[11.0, 22.0], [13.0, 24.0]])

    def test_sum_all(self):
        assert (t([[1.0, 2.0], [3.0, 4.0]]).sum()).item() == 10.0

    def test_sum_axis(self):
        np.testing.assert_allclose(t([[1.0, 2.0], [3.0, 4.0]]).sum(axis=0).data, [4.0, 6.0])

    def test_sum_keepdims(self):
        assert t([[1.0, 2.0]]).sum(axis=1, keepdims=True).shape == (1, 1)

    def test_mean(self):
        assert t([2.0, 4.0]).mean().item() == 3.0

    def test_max_axis(self):
        np.testing.assert_allclose(t([[1.0, 5.0], [3.0, 2.0]]).max(axis=1).data, [5.0, 3.0])

    def test_min(self):
        assert t([3.0, -1.0, 2.0]).min().item() == -1.0

    def test_reshape(self):
        assert t(np.arange(6.0)).reshape(2, 3).shape == (2, 3)

    def test_transpose(self, rng):
        a = rng.normal(size=(2, 3, 4))
        assert t(a).transpose(2, 0, 1).shape == (4, 2, 3)

    def test_T(self, rng):
        a = rng.normal(size=(2, 5))
        np.testing.assert_allclose(t(a).T.data, a.T)

    def test_getitem_slice(self, rng):
        a = rng.normal(size=(5, 3))
        np.testing.assert_allclose(t(a)[1:3].data, a[1:3])

    def test_getitem_int_array(self, rng):
        a = rng.normal(size=(5, 3))
        idx = np.array([4, 0, 4])
        np.testing.assert_allclose(t(a)[idx].data, a[idx])

    def test_exp_log_roundtrip(self, rng):
        a = np.abs(rng.normal(size=4)) + 0.5
        np.testing.assert_allclose(t(a).log().exp().data, a)

    def test_relu(self):
        np.testing.assert_allclose(t([-1.0, 0.0, 2.0]).relu().data, [0.0, 0.0, 2.0])

    def test_leaky_relu(self):
        np.testing.assert_allclose(t([-2.0, 3.0]).leaky_relu(0.1).data, [-0.2, 3.0])

    def test_elu_positive_identity(self):
        np.testing.assert_allclose(t([1.5]).elu().data, [1.5])

    def test_elu_negative(self):
        np.testing.assert_allclose(t([-1.0]).elu(alpha=2.0).data, [2.0 * (np.exp(-1.0) - 1.0)])

    def test_sigmoid_bounds(self, rng):
        out = t(rng.normal(size=50) * 10).sigmoid().data
        assert np.all(out > 0) and np.all(out < 1)

    def test_tanh(self):
        np.testing.assert_allclose(t([0.0]).tanh().data, [0.0])

    def test_abs(self):
        np.testing.assert_allclose(t([-3.0, 2.0]).abs().data, [3.0, 2.0])

    def test_sqrt(self):
        np.testing.assert_allclose(t([4.0, 9.0]).sqrt().data, [2.0, 3.0])

    def test_clip(self):
        np.testing.assert_allclose(t([-5.0, 0.5, 5.0]).clip(-1.0, 1.0).data, [-1.0, 0.5, 1.0])

    def test_softmax_rows_sum_to_one(self, rng):
        out = t(rng.normal(size=(6, 4))).softmax(axis=-1).data
        np.testing.assert_allclose(out.sum(axis=-1), np.ones(6))

    def test_log_softmax_matches_softmax(self, rng):
        a = rng.normal(size=(3, 5))
        np.testing.assert_allclose(np.exp(t(a).log_softmax(axis=-1).data), t(a).softmax(axis=-1).data)

    def test_softmax_shift_invariance(self, rng):
        a = rng.normal(size=(2, 4))
        np.testing.assert_allclose(
            t(a).softmax(axis=-1).data, t(a + 100.0).softmax(axis=-1).data, atol=1e-12
        )

    def test_concat(self, rng):
        a, b = rng.normal(size=(2, 3)), rng.normal(size=(4, 3))
        np.testing.assert_allclose(concat([t(a), t(b)], axis=0).data, np.concatenate([a, b]))

    def test_stack(self, rng):
        a, b = rng.normal(size=3), rng.normal(size=3)
        np.testing.assert_allclose(stack([t(a), t(b)]).data, np.stack([a, b]))

    def test_where(self, rng):
        cond = np.array([True, False, True])
        a, b = rng.normal(size=3), rng.normal(size=3)
        np.testing.assert_allclose(where(cond, t(a), t(b)).data, np.where(cond, a, b))

    def test_maximum_minimum(self, rng):
        a, b = rng.normal(size=5), rng.normal(size=5)
        np.testing.assert_allclose(maximum(t(a), t(b)).data, np.maximum(a, b))
        np.testing.assert_allclose(minimum(t(a), t(b)).data, np.minimum(a, b))


class TestGradcheck:
    """Every differentiable op verified against central finite differences."""

    def test_add(self, rng):
        gradcheck(lambda a, b: (a + b).sum(), [rand(rng, 3, 4), rand(rng, 3, 4)])

    def test_add_broadcast(self, rng):
        gradcheck(lambda a, b: (a + b).sum(), [rand(rng, 3, 4), rand(rng, 4)])

    def test_sub(self, rng):
        gradcheck(lambda a, b: (a - b).sum(), [rand(rng, 2, 3), rand(rng, 2, 3)])

    def test_mul_broadcast(self, rng):
        gradcheck(lambda a, b: (a * b).sum(), [rand(rng, 2, 3), rand(rng, 3)])

    def test_div(self, rng):
        b = Tensor(np.abs(rng.normal(size=(2, 3))) + 1.0, requires_grad=True)
        gradcheck(lambda a, b: (a / b).sum(), [rand(rng, 2, 3), b])

    def test_pow(self, rng):
        a = Tensor(np.abs(rng.normal(size=4)) + 0.5, requires_grad=True)
        gradcheck(lambda a: (a**3).sum(), [a])

    def test_matmul(self, rng):
        gradcheck(lambda a, b: (a @ b).sum(), [rand(rng, 3, 4), rand(rng, 4, 2)])

    def test_matmul_vector_rhs(self, rng):
        gradcheck(lambda a, b: (a @ b).sum(), [rand(rng, 3, 4), rand(rng, 4)])

    def test_matmul_vector_lhs(self, rng):
        gradcheck(lambda a, b: (a @ b).sum(), [rand(rng, 4), rand(rng, 4, 3)])

    def test_dot(self, rng):
        gradcheck(lambda a, b: (a @ b), [rand(rng, 5), rand(rng, 5)])

    def test_sum_axis(self, rng):
        gradcheck(lambda a: (a.sum(axis=1) ** 2).sum(), [rand(rng, 3, 4)])

    def test_mean_axis(self, rng):
        gradcheck(lambda a: (a.mean(axis=0) ** 2).sum(), [rand(rng, 3, 4)])

    def test_max_axis(self, rng):
        # offset avoids exact ties where the subgradient is ambiguous
        a = Tensor(rng.permutation(12).reshape(3, 4).astype(float), requires_grad=True)
        gradcheck(lambda a: a.max(axis=1).sum(), [a])

    def test_reshape(self, rng):
        gradcheck(lambda a: (a.reshape(6) ** 2).sum(), [rand(rng, 2, 3)])

    def test_transpose(self, rng):
        gradcheck(lambda a: (a.transpose(1, 0) ** 2).sum(), [rand(rng, 2, 3)])

    def test_getitem_gather(self, rng):
        idx = np.array([0, 2, 2, 1])
        gradcheck(lambda a: (a[idx] ** 2).sum(), [rand(rng, 4, 3)])

    def test_getitem_tuple(self, rng):
        rows, cols = np.array([0, 1, 2]), np.array([2, 0, 1])
        gradcheck(lambda a: (a[(rows, cols)] ** 2).sum(), [rand(rng, 3, 3)])

    def test_exp(self, rng):
        gradcheck(lambda a: a.exp().sum(), [rand(rng, 3, 2)])

    def test_log(self, rng):
        a = Tensor(np.abs(rng.normal(size=5)) + 0.5, requires_grad=True)
        gradcheck(lambda a: a.log().sum(), [a])

    def test_sqrt(self, rng):
        a = Tensor(np.abs(rng.normal(size=5)) + 0.5, requires_grad=True)
        gradcheck(lambda a: a.sqrt().sum(), [a])

    def test_relu(self, rng):
        a = Tensor(rng.normal(size=(4, 4)) + 0.05, requires_grad=True)
        gradcheck(lambda a: a.relu().sum(), [a])

    def test_leaky_relu(self, rng):
        gradcheck(lambda a: a.leaky_relu(0.2).sum(), [rand(rng, 4, 3)])

    def test_elu(self, rng):
        gradcheck(lambda a: a.elu(1.3).sum(), [rand(rng, 3, 3)])

    def test_sigmoid(self, rng):
        gradcheck(lambda a: a.sigmoid().sum(), [rand(rng, 4)])

    def test_tanh(self, rng):
        gradcheck(lambda a: a.tanh().sum(), [rand(rng, 4)])

    def test_softmax(self, rng):
        w = Tensor(rng.normal(size=(3, 4)), requires_grad=False)
        gradcheck(lambda a: (a.softmax(axis=-1) * w).sum(), [rand(rng, 3, 4)])

    def test_log_softmax(self, rng):
        w = Tensor(rng.normal(size=(3, 4)), requires_grad=False)
        gradcheck(lambda a: (a.log_softmax(axis=-1) * w).sum(), [rand(rng, 3, 4)])

    def test_softmax_axis0(self, rng):
        w = Tensor(rng.normal(size=(4, 2)), requires_grad=False)
        gradcheck(lambda a: (a.softmax(axis=0) * w).sum(), [rand(rng, 4, 2)])

    def test_concat(self, rng):
        gradcheck(lambda a, b: (concat([a, b], axis=1) ** 2).sum(), [rand(rng, 2, 3), rand(rng, 2, 2)])

    def test_stack(self, rng):
        gradcheck(lambda a, b: (stack([a, b]) ** 2).sum(), [rand(rng, 3), rand(rng, 3)])

    def test_where(self, rng):
        cond = rng.random(6) > 0.5
        gradcheck(lambda a, b: where(cond, a, b).sum(), [rand(rng, 6), rand(rng, 6)])

    def test_maximum(self, rng):
        a = rand(rng, 6)
        b = Tensor(a.data + rng.normal(size=6) + 0.05, requires_grad=True)
        gradcheck(lambda a, b: maximum(a, b).sum(), [a, b])

    def test_clip(self, rng):
        a = Tensor(rng.normal(size=8) * 2, requires_grad=True)
        a.data += np.sign(a.data) * 0.01  # stay off the clip boundaries
        gradcheck(lambda a: a.clip(-1.0, 1.0).sum(), [a])

    def test_abs(self, rng):
        a = Tensor(rng.normal(size=6) + np.sign(rng.normal(size=6)) * 0.1, requires_grad=True)
        gradcheck(lambda a: a.abs().sum(), [a])

    def test_composite_expression(self, rng):
        def f(a, b):
            return ((a @ b).relu().softmax(axis=-1).log() * -1.0).mean()

        gradcheck(f, [rand(rng, 3, 4), rand(rng, 4, 5)])


@settings(max_examples=25, deadline=None)
@given(
    rows=st.integers(1, 5),
    cols=st.integers(1, 5),
    seed=st.integers(0, 2**31 - 1),
)
def test_property_add_mul_grads(rows, cols, seed):
    """Hypothesis: d/da sum(a*b + a) == b + 1 exactly for random shapes."""
    rng = np.random.default_rng(seed)
    a = Tensor(rng.normal(size=(rows, cols)), requires_grad=True)
    b = Tensor(rng.normal(size=(rows, cols)), requires_grad=False)
    loss = (a * b + a).sum()
    loss.backward()
    np.testing.assert_allclose(a.grad, b.data + 1.0, atol=1e-12)


@settings(max_examples=25, deadline=None)
@given(n=st.integers(2, 6), seed=st.integers(0, 2**31 - 1))
def test_property_softmax_simplex(n, seed):
    """Hypothesis: softmax output lies on the probability simplex."""
    rng = np.random.default_rng(seed)
    out = Tensor(rng.normal(size=(n, n)) * 5).softmax(axis=-1).data
    assert np.all(out >= 0)
    np.testing.assert_allclose(out.sum(axis=-1), np.ones(n), atol=1e-12)
