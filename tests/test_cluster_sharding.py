"""Sharded graph distribution across the cluster runtime.

Covers the dispatch/assembly glue (:mod:`repro.distributed.shards`), the
per-worker context specialization, the streamed-result protocol, the
encode-once fallback frame, and the end-to-end determinism contract:
sharded Phase-1 training and Phase-2 evaluation are bit-identical to the
unsharded serial path over both transports.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.distributed.cluster import (
    ClusterError,
    TcpTransport,
    _ResultAssembler,
    _STREAMED,
    _send_result,
    _specialize_context,
)
from repro.distributed.ingredients import train_ingredients
from repro.distributed.shards import ShardDispatch, ShardedGraphSource
from repro.distributed.wire import decode_frame
from repro.graph.shard import shard_to_arrays
from repro.soup.engine import Candidate, make_evaluator, uniform_weights
from repro.telemetry import metrics
from repro.train import TrainConfig


def _states_equal(a: list[dict], b: list[dict]) -> bool:
    return all(
        set(sa) == set(sb) and all(np.array_equal(sa[k], sb[k]) for k in sa)
        for sa, sb in zip(a, b)
    )


# ---------------------------------------------------------------------------
# dispatch / source units
# ---------------------------------------------------------------------------


class TestShardDispatch:
    def test_frame_encoded_once(self, tiny_graph):
        with ShardDispatch(tiny_graph, 2, shm=False) as dispatch:
            assert dispatch.frame(0) is dispatch.frame(0)  # cached bytes reused
            kind, sid, arrays, meta = decode_frame(dispatch.frame(1))
            assert (kind, sid) == ("shard", 1)
            ref_arrays, ref_meta = shard_to_arrays(dispatch.shards[1])
            assert meta == ref_meta
            for key, value in ref_arrays.items():
                np.testing.assert_array_equal(arrays[key], value)

    def test_context_ref_specs_toggle(self, tiny_graph):
        with ShardDispatch(tiny_graph, 2, shm=True) as dispatch:
            assert dispatch.has_specs
            assert "specs" in dispatch.context_ref()
            assert "specs" not in dispatch.context_ref(specs=False)
        with ShardDispatch(tiny_graph, 2, shm=False) as dispatch:
            assert not dispatch.has_specs
            assert "specs" not in dispatch.context_ref()

    def test_invalid_k(self, tiny_graph):
        with pytest.raises(ValueError):
            ShardDispatch(tiny_graph, 0)

    def test_release_idempotent(self, tiny_graph):
        dispatch = ShardDispatch(tiny_graph, 2, shm=True)
        dispatch.release()
        dispatch.release()


class TestShardedGraphSource:
    def test_shm_path_assembles_exact(self, tiny_graph):
        with ShardDispatch(tiny_graph, 3, shm=True) as dispatch:
            ref = dict(dispatch.context_ref())
            ref["assigned"] = 1
            source = ShardedGraphSource(ref)
            assert source.holds() == {1}  # eager assigned-shard load only
            graph = source.graph
            assert source.holds() == {0, 1, 2}
            np.testing.assert_array_equal(graph.features, tiny_graph.features)
            np.testing.assert_array_equal(graph.csr.indices, tiny_graph.csr.indices)
            source.close()

    def test_fetch_path_batches_missing(self, tiny_graph):
        with ShardDispatch(tiny_graph, 3, shm=False) as dispatch:
            calls = []

            def fetch(sids):
                calls.append(tuple(sids))
                return {
                    int(sid): shard_to_arrays(dispatch.shards[int(sid)]) for sid in sids
                }

            ref = dict(dispatch.context_ref())
            ref["assigned"] = 2
            source = ShardedGraphSource(ref, fetch=fetch)
            assert calls == [(2,)]  # handshake ships only the assigned shard
            graph = source.graph
            assert calls == [(2,), (0, 1)]  # one batched round trip for the rest
            np.testing.assert_array_equal(graph.labels, tiny_graph.labels)
            source.close()

    def test_no_channel_raises(self, tiny_graph):
        with ShardDispatch(tiny_graph, 2, shm=False) as dispatch:
            source = ShardedGraphSource(dispatch.context_ref())
            with pytest.raises(RuntimeError):
                _ = source.graph


class TestSpecializeContext:
    def test_grafts_assigned_and_fetch(self):
        context = {"graph_ref": {"kind": "shards", "k": 3}, "other": 1}
        fetch = object()
        out = _specialize_context(context, 7, fetch=fetch)
        assert out is not context  # shared context stays cacheable
        assert out["graph_ref"]["assigned"] == 7 % 3
        assert out["graph_ref"]["_fetch"] is fetch
        assert "assigned" not in context["graph_ref"]
        assert out["other"] == 1

    def test_passthrough_without_shard_refs(self):
        context = {"graph_ref": {"kind": "shm", "spec": None}}
        assert _specialize_context(context, 4) is context
        assert _specialize_context("opaque", 4) == "opaque"


# ---------------------------------------------------------------------------
# streamed results
# ---------------------------------------------------------------------------


class TestResultStreaming:
    def _roundtrip(self, result, monkeypatch, threshold, chunk=512, snapshot=None):
        monkeypatch.setenv("REPRO_STREAM_THRESHOLD", str(threshold))
        monkeypatch.setenv("REPRO_STREAM_CHUNK", str(chunk))
        sent = []
        _send_result(sent.append, 3, 11, result, snapshot=snapshot)
        assembler = _ResultAssembler()
        out = [m for m in (assembler.feed(msg) for msg in sent) if m is not None]
        return sent, out

    def test_small_result_single_done_frame(self, monkeypatch):
        sent, out = self._roundtrip({"x": np.zeros(4)}, monkeypatch, threshold=1 << 20)
        assert len(sent) == 1 and sent[0][0] == "done"
        assert out == sent

    def test_large_result_streams_and_reassembles(self, monkeypatch):
        result = {"w": np.arange(4096, dtype=np.float64)}
        sent, out = self._roundtrip(result, monkeypatch, threshold=1024, chunk=777)
        kinds = [m[0] for m in sent]
        assert kinds[-1] == "done" and set(kinds[:-1]) == {"result-chunk"}
        assert len(sent) > 2  # actually chunked
        assert sent[-1][3] == _STREAMED
        # every chunk is bounded
        assert all(len(m[5]) <= 777 for m in sent[:-1])
        assert len(out) == 1 and out[0][0] == "done"
        np.testing.assert_array_equal(out[0][3]["w"], result["w"])

    def test_snapshot_rides_the_done_frame(self, monkeypatch):
        result = {"w": np.arange(4096, dtype=np.float64)}
        sent, out = self._roundtrip(result, monkeypatch, threshold=1024, snapshot={"s": 1})
        assert out[0][4] == {"s": 1}

    def test_zero_threshold_disables_streaming(self, monkeypatch):
        sent, _ = self._roundtrip(
            {"w": np.arange(4096, dtype=np.float64)}, monkeypatch, threshold=0
        )
        assert len(sent) == 1 and sent[0][0] == "done"

    def test_out_of_order_chunk_rejected(self):
        assembler = _ResultAssembler()
        assembler.feed(("result-chunk", 1, 2, 0, 3, b"a"))
        with pytest.raises(ClusterError):
            assembler.feed(("result-chunk", 1, 2, 2, 3, b"c"))

    def test_done_without_chunks_rejected(self):
        with pytest.raises(ClusterError):
            _ResultAssembler().feed(("done", 1, 2, _STREAMED))

    def test_drop_discards_partial_streams(self):
        assembler = _ResultAssembler()
        assembler.feed(("result-chunk", 1, 2, 0, 2, pickle.dumps("x")[:1]))
        assembler.drop(1)
        with pytest.raises(ClusterError):
            assembler.feed(("done", 1, 2, _STREAMED))

    def test_streamed_phase1_results_bit_identical(self, tiny_graph, monkeypatch):
        """Force every state dict over the chunked path end to end."""
        cfg = TrainConfig(epochs=2, lr=0.05)
        reference = train_ingredients("gcn", tiny_graph, 2, cfg, base_seed=5)
        monkeypatch.setenv("REPRO_STREAM_THRESHOLD", "1024")
        streamed = train_ingredients(
            "gcn", tiny_graph, 2, cfg, base_seed=5,
            executor="process", queue="dynamic", num_workers=2,
        )
        assert _states_equal(reference.states, streamed.states)


# ---------------------------------------------------------------------------
# encode-once fallback frame + payload accounting (tcp)
# ---------------------------------------------------------------------------


class TestTcpPayloadAccounting:
    def _bare_transport(self, fallback):
        transport = TcpTransport.__new__(TcpTransport)
        transport._fallback = fallback
        transport._fallback_value = None
        transport._fallback_frame_bytes = None
        transport._labels = {}
        transport.payload_bytes = {}
        return transport

    def test_fallback_frame_serialized_once(self):
        calls = []

        def fallback():
            calls.append(1)
            return {"graph_ref": {"kind": "arrays", "payload": {"n": 1}}}

        transport = self._bare_transport(fallback)
        frame = transport._fallback_frame()
        assert transport._fallback_frame() is frame  # cached bytes, no re-pickle
        assert len(calls) == 1
        kind, ctx = decode_frame(frame)
        assert kind == "context" and ctx["graph_ref"]["payload"] == {"n": 1}

    def test_no_fallback_returns_none(self):
        transport = self._bare_transport(None)
        assert transport._fallback_frame() is None

    def test_count_payload_accumulates_per_worker(self):
        transport = self._bare_transport(None)
        transport._count_payload(0, 100)
        transport._count_payload(0, 50)
        transport._count_payload(2, 7)
        assert transport.payload_bytes == {0: 150, 2: 7}


# ---------------------------------------------------------------------------
# end-to-end determinism: sharded == unsharded, both phases, both transports
# ---------------------------------------------------------------------------


class TestPhase1Sharded:
    @pytest.fixture(scope="class")
    def reference(self, tiny_graph):
        return train_ingredients(
            "gcn", tiny_graph, 3, TrainConfig(epochs=2, lr=0.05), base_seed=9
        )

    @pytest.mark.parametrize(
        "transport,kwargs",
        [
            ("pipe", {}),
            ("tcp", {}),
            ("tcp", {"shm": False}),  # pure fetch path: shards cross the socket
        ],
    )
    def test_bit_identical_to_serial(self, tiny_graph, reference, transport, kwargs):
        pool = train_ingredients(
            "gcn", tiny_graph, 3, TrainConfig(epochs=2, lr=0.05), base_seed=9,
            executor="process", queue="dynamic", transport=transport,
            num_workers=2, shards=2, **kwargs,
        )
        assert _states_equal(reference.states, pool.states)
        assert pool.val_accs == reference.val_accs

    def test_shards_require_process_dynamic(self, tiny_graph):
        with pytest.raises(ValueError, match="shards"):
            train_ingredients("gcn", tiny_graph, 2, shards=2)
        with pytest.raises(ValueError, match="shards"):
            train_ingredients(
                "gcn", tiny_graph, 2, executor="process", queue="rounds", shards=2
            )

    def test_pipe_shards_require_shm(self, tiny_graph):
        with pytest.raises(ValueError, match="shm"):
            train_ingredients(
                "gcn", tiny_graph, 2, executor="process", queue="dynamic",
                shards=2, shm=False,
            )

    def test_negative_shards_rejected(self, tiny_graph):
        with pytest.raises(ValueError):
            train_ingredients("gcn", tiny_graph, 2, shards=-1)

    def test_sharded_attach_metrics(self, tiny_graph):
        metrics.reset()
        metrics.set_enabled(True)
        try:
            train_ingredients(
                "gcn", tiny_graph, 2, TrainConfig(epochs=1), base_seed=9,
                executor="process", queue="dynamic", num_workers=2, shards=2,
            )
            sources = metrics.sources()
            attaches = sum(
                snap["counters"].get("shard.attaches", 0) for snap in sources.values()
            )
            # every worker attaches all k=2 shards by its first task
            assert attaches >= 2
        finally:
            metrics.set_enabled(False)
            metrics.reset()


class TestPhase2Sharded:
    @pytest.fixture(scope="class")
    def candidates(self, gcn_pool):
        n = len(gcn_pool)
        return [
            Candidate(weights=uniform_weights(n)),
            Candidate(weights=np.eye(n)[0]),
            Candidate(weights=uniform_weights(n), split="test"),
        ]

    @pytest.fixture(scope="class")
    def reference(self, gcn_pool, tiny_graph, candidates):
        with make_evaluator(gcn_pool, tiny_graph) as ev:
            return ev.evaluate(candidates)

    @pytest.mark.parametrize(
        "transport,kwargs",
        [
            ("pipe", {}),
            ("tcp", {"shm": False}),
        ],
    )
    def test_bit_identical_to_serial(
        self, gcn_pool, tiny_graph, candidates, reference, transport, kwargs
    ):
        with make_evaluator(
            gcn_pool, tiny_graph, backend="process", transport=transport,
            num_workers=2, shards=2, **kwargs,
        ) as ev:
            scores = ev.evaluate(candidates)
        assert scores == reference
        assert [type(s) for s in scores] == [type(r) for r in reference]

    def test_shards_require_process_backend(self, gcn_pool, tiny_graph):
        with pytest.raises(ValueError, match="process"):
            make_evaluator(gcn_pool, tiny_graph, backend="serial", shards=2)

    def test_pipe_shards_require_shm(self, gcn_pool, tiny_graph):
        with pytest.raises(ValueError, match="shm"):
            with make_evaluator(
                gcn_pool, tiny_graph, backend="process", shards=2, shm=False
            ) as ev:
                ev.evaluate([Candidate(weights=uniform_weights(len(gcn_pool)))])
