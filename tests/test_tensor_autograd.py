"""Autograd engine mechanics: tape construction, backward traversal, modes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.tensor import Tensor, is_grad_enabled, no_grad


def t(data, grad=True):
    return Tensor(np.asarray(data, dtype=np.float64), requires_grad=grad)


class TestTapeConstruction:
    def test_leaf_properties(self):
        x = t([1.0])
        assert x.is_leaf and x.requires_grad and x.grad is None

    def test_result_requires_grad_propagates(self):
        x, c = t([1.0]), t([2.0], grad=False)
        assert (x + c).requires_grad
        assert not (c + c).requires_grad

    def test_constant_graph_has_no_parents(self):
        c = t([2.0], grad=False)
        out = c * c
        assert out.is_leaf  # no tape recorded

    def test_no_grad_blocks_tape(self):
        x = t([3.0])
        with no_grad():
            out = x * x
        assert not out.requires_grad and out.is_leaf

    def test_no_grad_restores_flag(self):
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
            with no_grad():
                assert not is_grad_enabled()
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_detach_cuts_graph(self):
        x = t([2.0])
        y = (x * 3.0).detach()
        assert not y.requires_grad
        out = y * y
        assert not out.requires_grad


class TestBackward:
    def test_simple_chain(self):
        x = t([2.0])
        ((x * 3.0) + 1.0).backward(np.array([1.0]))
        np.testing.assert_allclose(x.grad, [3.0])

    def test_scalar_backward_no_arg(self):
        x = t([1.0, 2.0])
        (x * x).sum().backward()
        np.testing.assert_allclose(x.grad, [2.0, 4.0])

    def test_nonscalar_backward_requires_grad_arg(self):
        x = t([1.0, 2.0])
        with pytest.raises(RuntimeError):
            (x * 2.0).backward()

    def test_backward_on_non_grad_tensor_raises(self):
        x = t([1.0], grad=False)
        with pytest.raises(RuntimeError):
            x.backward()

    def test_fanout_accumulates(self):
        x = t([2.0])
        y = x * 3.0
        (y + y).backward(np.array([1.0]))
        np.testing.assert_allclose(x.grad, [6.0])

    def test_shared_subexpression_visited_once(self):
        # diamond: x -> a -> (b, c) -> d ; grads must accumulate, not double
        x = t([1.0])
        a = x * 2.0
        d = a * 3.0 + a * 5.0
        d.backward(np.array([1.0]))
        np.testing.assert_allclose(x.grad, [16.0])

    def test_two_backward_calls_accumulate_on_leaf(self):
        x = t([1.0])
        (x * 2.0).backward(np.array([1.0]))
        (x * 2.0).backward(np.array([1.0]))
        np.testing.assert_allclose(x.grad, [4.0])

    def test_zero_grad_resets(self):
        x = t([1.0])
        (x * 2.0).backward(np.array([1.0]))
        x.zero_grad()
        assert x.grad is None

    def test_grad_flows_only_to_requires_grad(self):
        x, c = t([1.0]), t([5.0], grad=False)
        (x * c).backward(np.array([1.0]))
        np.testing.assert_allclose(x.grad, [5.0])
        assert c.grad is None

    def test_deep_chain(self):
        x = t([1.0])
        y = x
        for _ in range(200):
            y = y + 1.0
        y.backward(np.array([1.0]))
        np.testing.assert_allclose(x.grad, [1.0])

    def test_deep_chain_iterative_topo_no_recursion_limit(self):
        # 5000-deep graph would blow Python's default recursion limit if the
        # topo sort were recursive
        x = t([0.5])
        y = x
        for _ in range(5000):
            y = y * 1.0
        y.backward(np.array([1.0]))
        np.testing.assert_allclose(x.grad, [1.0])

    def test_branching_graph_gradients(self):
        x = t([2.0])
        y = t([3.0])
        out = (x * y) + (x * x)
        out.backward(np.array([1.0]))
        np.testing.assert_allclose(x.grad, [3.0 + 4.0])
        np.testing.assert_allclose(y.grad, [2.0])


class TestDtypeAndCoercion:
    def test_int_input_promoted_to_float(self):
        x = Tensor(np.array([1, 2, 3]))
        assert x.dtype == np.float64

    def test_bool_input_promoted(self):
        x = Tensor(np.array([True, False]))
        assert x.dtype == np.float64

    def test_repr_mentions_shape(self):
        assert "shape=(2,)" in repr(t([1.0, 2.0]))

    def test_item_scalar(self):
        assert t([42.0]).item() == 42.0

    def test_len(self):
        assert len(t([1.0, 2.0, 3.0])) == 3

    def test_copy_independent(self):
        x = t([1.0])
        y = x.copy()
        y.data[0] = 99.0
        assert x.data[0] == 1.0
