"""Loss functions: numerical correctness and gradients."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import cross_entropy, l2_penalty, nll_loss
from repro.tensor import Tensor, gradcheck


def manual_ce(logits: np.ndarray, labels: np.ndarray) -> float:
    shifted = logits - logits.max(axis=1, keepdims=True)
    log_probs = shifted - np.log(np.exp(shifted).sum(axis=1, keepdims=True))
    return float(-log_probs[np.arange(len(labels)), labels].mean())


class TestCrossEntropy:
    def test_matches_manual(self, rng):
        logits = rng.normal(size=(6, 4))
        labels = rng.integers(0, 4, size=6)
        loss = cross_entropy(Tensor(logits), labels)
        np.testing.assert_allclose(loss.item(), manual_ce(logits, labels))

    def test_perfect_prediction_near_zero(self):
        logits = np.full((3, 4), -100.0)
        labels = np.array([0, 1, 2])
        logits[np.arange(3), labels] = 100.0
        assert cross_entropy(Tensor(logits), labels).item() < 1e-6

    def test_uniform_logits_log_c(self):
        loss = cross_entropy(Tensor(np.zeros((5, 8))), np.zeros(5, dtype=int))
        np.testing.assert_allclose(loss.item(), np.log(8.0))

    def test_sum_reduction(self, rng):
        logits = rng.normal(size=(4, 3))
        labels = rng.integers(0, 3, size=4)
        s = cross_entropy(Tensor(logits), labels, reduction="sum").item()
        m = cross_entropy(Tensor(logits), labels, reduction="mean").item()
        np.testing.assert_allclose(s, 4 * m)

    def test_none_reduction_shape(self, rng):
        logits = rng.normal(size=(4, 3))
        labels = rng.integers(0, 3, size=4)
        out = cross_entropy(Tensor(logits), labels, reduction="none")
        assert out.shape == (4,)

    def test_unknown_reduction_raises(self, rng):
        with pytest.raises(ValueError):
            cross_entropy(Tensor(rng.normal(size=(2, 2))), np.array([0, 1]), reduction="avg")

    def test_shape_validation(self, rng):
        with pytest.raises(ValueError):
            cross_entropy(Tensor(rng.normal(size=4)), np.array([0]))
        with pytest.raises(ValueError):
            cross_entropy(Tensor(rng.normal(size=(3, 2))), np.array([0, 1]))

    def test_gradcheck(self, rng):
        labels = rng.integers(0, 3, size=5)
        x = Tensor(rng.normal(size=(5, 3)), requires_grad=True)
        gradcheck(lambda x: cross_entropy(x, labels), [x])

    def test_gradient_is_softmax_minus_onehot(self, rng):
        logits = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
        labels = np.array([0, 2, 1, 0])
        cross_entropy(logits, labels).backward()
        probs = np.exp(logits.data - logits.data.max(axis=1, keepdims=True))
        probs /= probs.sum(axis=1, keepdims=True)
        onehot = np.eye(3)[labels]
        np.testing.assert_allclose(logits.grad, (probs - onehot) / 4.0, atol=1e-10)


class TestNLLAndPenalty:
    def test_nll_matches_ce(self, rng):
        logits = rng.normal(size=(5, 4))
        labels = rng.integers(0, 4, size=5)
        ce = cross_entropy(Tensor(logits), labels).item()
        nll = nll_loss(Tensor(logits).log_softmax(axis=-1), labels).item()
        np.testing.assert_allclose(ce, nll)

    def test_l2_penalty_value(self, rng):
        a = Tensor(np.array([3.0, 4.0]), requires_grad=True)
        np.testing.assert_allclose(l2_penalty([a]).item(), 25.0)

    def test_l2_penalty_empty_raises(self):
        with pytest.raises(ValueError):
            l2_penalty([])

    def test_l2_penalty_gradcheck(self, rng):
        a = Tensor(rng.normal(size=(3, 2)), requires_grad=True)
        b = Tensor(rng.normal(size=4), requires_grad=True)
        gradcheck(lambda a, b: l2_penalty([a, b]), [a, b])
