"""Executor equivalence, fault injection and checkpoint/resume (Phase 1).

The determinism contract under test: for a fixed ``base_seed`` the
ingredient pool is a pure function of ``(arch config, graph, base_seed)``
— identical across the ``serial``, ``thread`` and ``process`` executors,
across injected faults (retries retrain bit-identical replicas), and
across checkpoint-resumed runs.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.distributed import (
    EXECUTORS,
    QUEUES,
    CheckpointStore,
    FaultPlan,
    IngredientTrainingError,
    ResilientPoolSimulator,
    SimulatedWorkerFault,
    WorkerSpec,
    run_fingerprint,
    train_ingredients,
)
from repro.train import TrainConfig, TrainResult


KW = dict(train_cfg=TrainConfig(epochs=4, lr=0.05), base_seed=3, hidden_dim=8)


def assert_pools_identical(a, b):
    assert len(a) == len(b)
    for s1, s2 in zip(a.states, b.states):
        for name in s1:
            np.testing.assert_array_equal(s1[name], s2[name])
    assert a.val_accs == b.val_accs
    assert a.test_accs == b.test_accs


@pytest.fixture(scope="module")
def serial_pool(tiny_graph):
    return train_ingredients("gcn", tiny_graph, 3, executor="serial", **KW)


class TestExecutorEquivalence:
    @pytest.mark.parametrize("executor", [e for e in EXECUTORS if e != "serial"])
    def test_bit_identical_to_serial(self, tiny_graph, serial_pool, executor):
        pool = train_ingredients(
            "gcn", tiny_graph, 3, executor=executor, num_workers=3, **KW
        )
        assert_pools_identical(serial_pool, pool)

    def test_process_executor_with_jitter(self, tiny_graph):
        kw = dict(train_cfg=TrainConfig(epochs=6, lr=0.05), base_seed=1, hidden_dim=8, epoch_jitter=3)
        serial = train_ingredients("gcn", tiny_graph, 3, executor="serial", **kw)
        proc = train_ingredients("gcn", tiny_graph, 3, executor="process", num_workers=2, **kw)
        assert_pools_identical(serial, proc)

    def test_unknown_executor_rejected(self, tiny_graph):
        with pytest.raises(ValueError):
            train_ingredients("gcn", tiny_graph, 1, executor="mpi", **KW)

    def test_invalid_worker_count_rejected(self, tiny_graph):
        with pytest.raises(ValueError):
            train_ingredients("gcn", tiny_graph, 1, num_workers=0, **KW)

    def test_non_integral_worker_count_rejected_before_training(self, tiny_graph):
        """A float W (e.g. os.cpu_count()/2) must fail at the entry check,
        not after training at the makespan simulation."""
        with pytest.raises(ValueError, match="integer"):
            train_ingredients("gcn", tiny_graph, 1, num_workers=2.5, **KW)


class TestExecutionMatrix:
    """The full determinism matrix of the acceptance contract: the pool is
    bit-identical across executor × queue discipline × graph transport."""

    @pytest.mark.parametrize("shm", [True, False], ids=["shm", "noshm"])
    @pytest.mark.parametrize("queue", list(QUEUES))
    @pytest.mark.parametrize("executor", list(EXECUTORS))
    def test_bit_identical_across_matrix(self, tiny_graph, serial_pool, executor, queue, shm):
        pool = train_ingredients(
            "gcn", tiny_graph, 3, executor=executor, queue=queue, shm=shm,
            num_workers=3, **KW,
        )
        assert_pools_identical(serial_pool, pool)

    def test_unknown_queue_rejected(self, tiny_graph):
        with pytest.raises(ValueError, match="queue"):
            train_ingredients("gcn", tiny_graph, 1, queue="lifo", **KW)

    def test_dynamic_pool_survives_task_sets_beyond_pipe_capacity(self, tiny_graph):
        """The shared task pipe holds only ~64KB (~130 pickled specs); the
        driver must feed it incrementally or a large pool wedges before the
        first worker spawns. 150 one-epoch tasks regress exactly that."""
        pool = train_ingredients(
            "gcn", tiny_graph, 150, executor="process", num_workers=2,
            train_cfg=TrainConfig(epochs=1, lr=0.05), base_seed=3, hidden_dim=4,
        )
        assert len(pool) == 150

    @pytest.mark.parametrize("queue", list(QUEUES))
    def test_dynamic_and_rounds_share_checkpoints(self, tiny_graph, tmp_path, queue):
        """Same run fingerprint whatever the discipline: a rounds-mode
        checkpoint directory resumes a dynamic-mode run and vice versa."""
        other = "rounds" if queue == "dynamic" else "dynamic"
        train_ingredients(
            "gcn", tiny_graph, 2, executor="serial", queue=other,
            checkpoint_dir=tmp_path, **KW,
        )
        poisoned = train_ingredients(
            "gcn", tiny_graph, 2, executor="serial", queue=queue,
            checkpoint_dir=tmp_path, resume=True,
            fault_plan={0: 99, 1: 99}, max_retries=0, **KW,
        )
        clean = train_ingredients("gcn", tiny_graph, 2, executor="serial", **KW)
        assert_pools_identical(clean, poisoned)  # nothing actually retrained


class TestFaultInjection:
    @pytest.mark.parametrize("executor", list(EXECUTORS))
    def test_faulted_attempt_is_retried(self, tiny_graph, serial_pool, executor):
        pool = train_ingredients(
            "gcn", tiny_graph, 3, executor=executor, num_workers=2,
            fault_plan={1: 1}, **KW,
        )
        assert_pools_identical(serial_pool, pool)

    @pytest.mark.parametrize("queue", list(QUEUES))
    def test_hard_killed_process_worker_is_retried(self, tiny_graph, serial_pool, queue):
        """kill=True fail-stops the worker process; under "rounds" the next
        round's fresh pool retrains the lost task, under "dynamic" the
        task re-enters the shared queue and a replacement worker spawns."""
        pool = train_ingredients(
            "gcn", tiny_graph, 3, executor="process", num_workers=2, queue=queue,
            fault_plan=FaultPlan(failures={0: 1}, kill=True), **KW,
        )
        assert_pools_identical(serial_pool, pool)

    def test_retry_budget_exhausted_raises(self, tiny_graph):
        with pytest.raises(IngredientTrainingError, match=r"\[0\]"):
            train_ingredients(
                "gcn", tiny_graph, 2, executor="serial",
                fault_plan={0: 99}, max_retries=1, **KW,
            )

    def test_negative_max_retries_rejected(self, tiny_graph):
        with pytest.raises(ValueError):
            train_ingredients("gcn", tiny_graph, 1, max_retries=-1, **KW)

    def test_fault_plan_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(failures={-1: 1})
        with pytest.raises(ValueError):
            FaultPlan(failures={0: -2})

    def test_fault_plan_normalizes_keys(self):
        """A plan deserialised from JSON carries string keys; lookups by
        int task index must still hit."""
        plan = FaultPlan(failures={"2": "1"})
        assert plan.fail_attempts(2) == 1
        assert plan.failures == {2: 1}

    def test_concurrent_kill_faults_all_fire_and_converge(self, tiny_graph, serial_pool):
        """Two kill faults in flight at once: collateral pool breakage must
        not silently eat the second task's fault budget in a way that
        leaves the run failing or the pool wrong."""
        pool = train_ingredients(
            "gcn", tiny_graph, 3, executor="process", num_workers=3,
            fault_plan=FaultPlan(failures={0: 1, 1: 1, 2: 1}, kill=True),
            max_retries=3, **KW,
        )
        assert_pools_identical(serial_pool, pool)

    def test_fault_plan_from_schedule(self):
        """Replaying a simulated fail-stop schedule: tasks that needed k
        attempts in the simulation fail k-1 real attempts."""
        workers = [WorkerSpec(fail_at=1.5), WorkerSpec()]
        sched = ResilientPoolSimulator(workers).schedule([1.0, 1.0, 1.0, 1.0])
        plan = FaultPlan.from_schedule(sched)
        assert plan.failures == {
            i: int(a - 1) for i, a in enumerate(sched.attempts) if a > 1
        }
        assert sum(plan.failures.values()) == sched.total_retries

    def test_simulated_fault_is_runtime_error(self):
        assert issubclass(SimulatedWorkerFault, RuntimeError)

    def test_after_epochs_validation(self):
        with pytest.raises(ValueError, match="after_epochs"):
            FaultPlan(failures={0: 1}, after_epochs=0)

    @pytest.mark.parametrize("executor", list(EXECUTORS))
    def test_mid_epoch_fault_is_retried(self, tiny_graph, serial_pool, executor):
        """An attempt dying after N completed epochs (not at pickup) is
        retried and still converges to the bit-identical pool."""
        pool = train_ingredients(
            "gcn", tiny_graph, 3, executor=executor, num_workers=2,
            fault_plan=FaultPlan(failures={1: 1}, after_epochs=2), **KW,
        )
        assert_pools_identical(serial_pool, pool)

    def test_kill_plan_never_exits_a_non_worker_driver(self):
        """A kill fault under the serial executor must raise (and be
        retried/reported), not os._exit the driver — even when the driver
        itself runs inside a multiprocessing child. Runs in a fresh
        interpreter: forking from inside pytest is not fork-safe."""
        script = """
import multiprocessing as mp

from repro.distributed import FaultPlan, IngredientTrainingError, train_ingredients
from repro.graph import GeneratorConfig, homophilous_graph
from repro.train import TrainConfig

def driver():
    graph = homophilous_graph(
        GeneratorConfig(num_nodes=60, num_classes=3, avg_degree=6.0, homophily=0.7,
                        feature_dim=8, feature_noise=1.0, split=(0.5, 0.25, 0.25), name="t"),
        seed=0,
    )
    try:
        train_ingredients(
            "gcn", graph, 1, executor="serial", hidden_dim=4,
            train_cfg=TrainConfig(epochs=2),
            fault_plan=FaultPlan(failures={0: 9}, kill=True), max_retries=0,
        )
    except IngredientTrainingError:
        print("fault-raised")

if __name__ == "__main__":
    ctx = mp.get_context("fork" if "fork" in mp.get_all_start_methods() else "spawn")
    proc = ctx.Process(target=driver)
    proc.start()
    proc.join(60)
    print("exitcode", proc.exitcode)
"""
        out = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, timeout=120,
            env={**os.environ, "PYTHONPATH": "src"},
            cwd=str(Path(__file__).resolve().parents[1]),
        )
        assert "fault-raised" in out.stdout, out.stderr
        assert "exitcode 0" in out.stdout  # not 43: the driver was never hard-killed


class TestCheckpointStore:
    def _result(self, rng):
        return TrainResult(
            state_dict={"w": rng.normal(size=(3, 2)), "b": rng.normal(size=3)},
            val_acc=0.5, test_acc=0.4, train_time=1.25, epochs_run=7,
        )

    def test_round_trip(self, tmp_path, rng):
        store = CheckpointStore(tmp_path, "fp-1")
        result = self._result(rng)
        path = store.save(2, result)
        assert path.exists() and len(store) == 1
        loaded = store.load(2)
        np.testing.assert_array_equal(loaded.state_dict["w"], result.state_dict["w"])
        np.testing.assert_array_equal(loaded.state_dict["b"], result.state_dict["b"])
        assert loaded.val_acc == result.val_acc
        assert loaded.test_acc == result.test_acc
        assert loaded.train_time == result.train_time
        assert loaded.epochs_run == result.epochs_run

    def test_missing_index_is_none(self, tmp_path):
        assert CheckpointStore(tmp_path, "fp").load(0) is None

    def test_different_fingerprints_are_isolated(self, tmp_path, rng):
        """Runs with different fingerprints share a directory without
        seeing each other's entries (per-fingerprint subdirs)."""
        CheckpointStore(tmp_path, "fp-a").save(0, self._result(rng))
        other = CheckpointStore(tmp_path, "fp-b")
        assert other.load(0) is None
        assert other.completed(1) == {}

    def test_foreign_stamp_rejected(self, tmp_path, rng):
        """A file copied in from another run (fingerprint stamp mismatch)
        must read as absent even when the filename matches."""
        source = CheckpointStore(tmp_path, "fp-a")
        source.save(0, self._result(rng))
        target = CheckpointStore(tmp_path, "fp-b")
        target.path(0).write_bytes(source.path(0).read_bytes())
        assert target.load(0) is None

    def test_stale_tmp_swept_on_open(self, tmp_path, rng):
        """A worker hard-killed mid-write leaves its temp file behind
        (``finally`` never runs under SIGKILL); reopening the store must
        sweep it without touching finished checkpoints."""
        store = CheckpointStore(tmp_path, "fp")
        store.save(0, self._result(rng))
        orphan = store.directory / ".ingredient-00003.npz.tmp-4242.npz"
        orphan.write_bytes(b"half-written garbage")
        reopened = CheckpointStore(tmp_path, "fp")
        assert not orphan.exists()
        assert reopened.load(0) is not None
        assert len(reopened) == 1

    def test_worker_handle_does_not_sweep(self, tmp_path, rng):
        """Workers attach with sweep_stale=False — a sweep concurrent with
        live writers could race an in-flight temp file."""
        store = CheckpointStore(tmp_path, "fp")
        inflight = store.directory / ".ingredient-00001.npz.tmp-77.npz"
        inflight.write_bytes(b"another worker, mid-write")
        CheckpointStore(tmp_path, "fp", sweep_stale=False)
        assert inflight.exists()

    def test_corrupt_file_ignored(self, tmp_path, rng):
        store = CheckpointStore(tmp_path, "fp")
        store.save(0, self._result(rng))
        store.path(0).write_bytes(b"not an npz archive")
        assert store.load(0) is None

    def test_truncated_file_ignored(self, tmp_path, rng):
        """A checkpoint truncated mid-write (disk full, bad copy) raises
        zipfile.BadZipFile inside np.load — must read as absent."""
        store = CheckpointStore(tmp_path, "fp")
        store.save(0, self._result(rng))
        payload = store.path(0).read_bytes()
        store.path(0).write_bytes(payload[: len(payload) // 2])
        assert store.load(0) is None

    def test_completed_subset(self, tmp_path, rng):
        store = CheckpointStore(tmp_path, "fp")
        store.save(0, self._result(rng))
        store.save(2, self._result(rng))
        assert sorted(store.completed(4)) == [0, 2]

    def test_fingerprint_sensitivity(self, tiny_graph, small_graph):
        cfgs = [TrainConfig(epochs=2)]
        config = {"arch": "gcn", "seed": 0}
        base = run_fingerprint(config, tiny_graph, cfgs, [1])
        assert base == run_fingerprint(config, tiny_graph, cfgs, [1])
        assert base != run_fingerprint(config, tiny_graph, cfgs, [2])
        assert base != run_fingerprint({"arch": "gcn", "seed": 1}, tiny_graph, cfgs, [1])
        assert base != run_fingerprint(config, small_graph, cfgs, [1])
        assert base != run_fingerprint(config, tiny_graph, [TrainConfig(epochs=3)], [1])

    def test_fingerprint_sensitive_to_split(self, tiny_graph):
        """Same structure/features/labels but a different train/val/test
        partition must fingerprint differently — otherwise resume could
        serve weights trained on the wrong split."""
        from repro.graph import Graph

        swapped = Graph(
            tiny_graph.csr,
            tiny_graph.features,
            tiny_graph.labels,
            tiny_graph.val_mask,  # train and val swapped
            tiny_graph.train_mask,
            tiny_graph.test_mask,
            tiny_graph.num_classes,
            name=tiny_graph.name,
        )
        cfgs = [TrainConfig(epochs=2)]
        config = {"arch": "gcn", "seed": 0}
        assert run_fingerprint(config, tiny_graph, cfgs, [1]) != run_fingerprint(
            config, swapped, cfgs, [1]
        )


class TestResume:
    @pytest.mark.parametrize("executor", list(EXECUTORS))
    def test_resume_after_mid_pool_fault(self, tiny_graph, serial_pool, tmp_path, executor):
        """A run killed mid-pool leaves completed ingredients checkpointed;
        the resumed run skips them and the final pool matches a clean run."""
        with pytest.raises(IngredientTrainingError):
            train_ingredients(
                "gcn", tiny_graph, 3, executor=executor, num_workers=2,
                checkpoint_dir=tmp_path, fault_plan={2: 99}, max_retries=0, **KW,
            )
        # entries land under a per-fingerprint subdirectory
        store_files = sorted(p.name for p in tmp_path.glob("*/ingredient-*.npz"))
        assert store_files == ["ingredient-00000.npz", "ingredient-00001.npz"]

        resumed = train_ingredients(
            "gcn", tiny_graph, 3, executor=executor, num_workers=2,
            checkpoint_dir=tmp_path, resume=True, **KW,
        )
        assert_pools_identical(serial_pool, resumed)
        # checkpointed train_times survive the resume verbatim
        assert resumed.train_times[:2] != [0.0, 0.0]

    def test_resume_with_full_checkpoint_retrains_nothing(self, tiny_graph, serial_pool, tmp_path):
        first = train_ingredients(
            "gcn", tiny_graph, 3, executor="serial", checkpoint_dir=tmp_path, **KW
        )
        resumed = train_ingredients(
            "gcn", tiny_graph, 3, executor="serial", checkpoint_dir=tmp_path,
            resume=True, fault_plan={0: 99, 1: 99, 2: 99}, max_retries=0, **KW,
        )
        # the poisonous fault plan proves no task actually ran
        assert_pools_identical(first, resumed)
        assert resumed.train_times == first.train_times

    def test_resume_ignores_foreign_checkpoints(self, tiny_graph, tmp_path):
        """A checkpoint dir written under different hyperparameters must not
        leak into the pool (fingerprint mismatch => retrain)."""
        other_kw = dict(train_cfg=TrainConfig(epochs=2, lr=0.1), base_seed=9, hidden_dim=8)
        train_ingredients("gcn", tiny_graph, 3, checkpoint_dir=tmp_path, **other_kw)
        clean = train_ingredients("gcn", tiny_graph, 3, **KW)
        resumed = train_ingredients(
            "gcn", tiny_graph, 3, checkpoint_dir=tmp_path, resume=True, **KW
        )
        assert_pools_identical(clean, resumed)

    def test_checkpoints_written_per_task_not_per_round(self, tiny_graph, tmp_path, monkeypatch):
        """Each finished ingredient must hit disk immediately: a crash that
        aborts the round mid-way (here an unexpected error on task 2) must
        leave tasks 0 and 1 checkpointed for resume."""
        from repro.distributed import ingredients as ing

        real_train_model = ing.train_model
        calls = []

        def crashing_train_model(model, graph, cfg, seed=0, **kwargs):
            calls.append(seed)
            if len(calls) == 3:
                raise RuntimeError("simulated hard crash mid-pool")
            return real_train_model(model, graph, cfg, seed=seed, **kwargs)

        monkeypatch.setattr(ing, "train_model", crashing_train_model)
        with pytest.raises(RuntimeError, match="mid-pool"):
            train_ingredients(
                "gcn", tiny_graph, 3, executor="serial", checkpoint_dir=tmp_path, **KW
            )
        saved = sorted(p.name for p in tmp_path.glob("*/ingredient-*.npz"))
        assert saved == ["ingredient-00000.npz", "ingredient-00001.npz"]

    def test_resume_requires_checkpoint_dir(self, tiny_graph):
        with pytest.raises(ValueError):
            train_ingredients("gcn", tiny_graph, 1, resume=True, **KW)

    def test_schedule_present_after_resume(self, tiny_graph, tmp_path):
        train_ingredients("gcn", tiny_graph, 2, checkpoint_dir=tmp_path, **KW)
        pool = train_ingredients(
            "gcn", tiny_graph, 2, checkpoint_dir=tmp_path, resume=True, **KW
        )
        assert pool.schedule is not None and pool.schedule.makespan > 0


class TestEpochCheckpoint:
    """Per-epoch granularity: a worker killed mid-ingredient resumes from
    its last epoch snapshot, never from epoch 1 — and the final pool stays
    bit-identical to an uninterrupted run."""

    def test_checkpoint_every_requires_dir(self, tiny_graph):
        with pytest.raises(ValueError, match="checkpoint_every"):
            train_ingredients("gcn", tiny_graph, 1, checkpoint_every=2, **KW)

    def test_negative_checkpoint_every_rejected(self, tiny_graph):
        with pytest.raises(ValueError):
            train_ingredients(
                "gcn", tiny_graph, 1, checkpoint_dir="unused", checkpoint_every=-1, **KW
            )

    def test_mid_epoch_kill_then_resume_bit_identical(self, tiny_graph, serial_pool, tmp_path):
        """The acceptance scenario: a process worker hard-dies after 2 of 4
        epochs (FaultPlan kill + after_epochs) with no retry budget; the
        resumed run restarts that task from its epoch snapshot and the
        final pool matches an uninterrupted serial run bit for bit."""
        with pytest.raises(IngredientTrainingError, match=r"\[1\]"):
            train_ingredients(
                "gcn", tiny_graph, 3, executor="process", num_workers=2,
                checkpoint_dir=tmp_path, checkpoint_every=1,
                fault_plan=FaultPlan(failures={1: 99}, kill=True, after_epochs=2),
                max_retries=0, **KW,
            )
        # the killed task left its rolling epoch snapshot behind
        epoch_files = sorted(p.name for p in tmp_path.glob("*/ingredient-*.epoch.npz"))
        assert epoch_files == ["ingredient-00001.epoch.npz"]

        resumed = train_ingredients(
            "gcn", tiny_graph, 3, executor="process", num_workers=2,
            checkpoint_dir=tmp_path, checkpoint_every=1, resume=True, **KW,
        )
        assert_pools_identical(serial_pool, resumed)
        # the snapshot is superseded by the finished ingredient
        assert list(tmp_path.glob("*/ingredient-*.epoch.npz")) == []

    def test_resume_restarts_from_snapshot_not_scratch(self, tiny_graph, serial_pool, tmp_path, monkeypatch):
        """The resumed attempt must actually load the epoch snapshot (epoch
        cursor advanced), not silently retrain from epoch 1."""
        from repro.distributed import ingredients as ing

        with pytest.raises(IngredientTrainingError):
            train_ingredients(
                "gcn", tiny_graph, 3, executor="serial",
                checkpoint_dir=tmp_path, checkpoint_every=2,
                fault_plan=FaultPlan(failures={0: 99}, after_epochs=3),
                max_retries=0, **KW,
            )

        real_train_model = ing.train_model
        seen_states = {}

        def spying_train_model(model, graph, cfg, seed=0, epoch_state=None, **kwargs):
            seen_states[seed] = epoch_state
            return real_train_model(model, graph, cfg, seed=seed, epoch_state=epoch_state, **kwargs)

        monkeypatch.setattr(ing, "train_model", spying_train_model)
        resumed = train_ingredients(
            "gcn", tiny_graph, 3, executor="serial",
            checkpoint_dir=tmp_path, resume=True, **KW,
        )
        assert_pools_identical(serial_pool, resumed)
        # task 0's seed is base_seed * 7919 + 1; its resume state carries
        # the snapshot taken at epoch 2 (last multiple of checkpoint_every
        # before the fault at epoch 3)
        task0_state = seen_states[KW["base_seed"] * 7_919 + 1]
        assert task0_state is not None and task0_state.epoch == 2

    def test_multiple_planned_faults_all_fire_despite_epoch_resume(self, tiny_graph, serial_pool, tmp_path):
        """A retried attempt resuming at/past the fault epoch must still
        die (>= gate, not ==): with 2 planned mid-ingredient faults and
        per-epoch snapshots, both fire and the third attempt finishes."""
        pool = train_ingredients(
            "gcn", tiny_graph, 3, executor="serial",
            checkpoint_dir=tmp_path, checkpoint_every=1,
            fault_plan=FaultPlan(failures={0: 2}, after_epochs=2),
            max_retries=2, **KW,
        )
        assert_pools_identical(serial_pool, pool)

    def test_within_run_retry_resumes_mid_ingredient(self, tiny_graph, serial_pool, tmp_path, monkeypatch):
        """A retried attempt inside one run picks up the dead attempt's
        snapshot instead of burning the epochs again."""
        from repro.distributed import ingredients as ing

        real_train_model = ing.train_model
        resume_epochs = []

        def spying_train_model(model, graph, cfg, seed=0, epoch_state=None, **kwargs):
            if seed == KW["base_seed"] * 7_919 + 1:  # task 0
                resume_epochs.append(None if epoch_state is None else epoch_state.epoch)
            return real_train_model(model, graph, cfg, seed=seed, epoch_state=epoch_state, **kwargs)

        monkeypatch.setattr(ing, "train_model", spying_train_model)
        pool = train_ingredients(
            "gcn", tiny_graph, 3, executor="serial",
            checkpoint_dir=tmp_path, checkpoint_every=1,
            fault_plan=FaultPlan(failures={0: 1}, after_epochs=2), **KW,
        )
        assert_pools_identical(serial_pool, pool)
        assert resume_epochs == [None, 2]  # attempt 1 fresh, attempt 2 resumed

    def test_no_epoch_files_left_after_clean_run(self, tiny_graph, serial_pool, tmp_path):
        pool = train_ingredients(
            "gcn", tiny_graph, 3, executor="serial",
            checkpoint_dir=tmp_path, checkpoint_every=1, **KW,
        )
        assert_pools_identical(serial_pool, pool)
        assert list(tmp_path.glob("*/ingredient-*.epoch.npz")) == []
        finished = sorted(p.name for p in tmp_path.glob("*/ingredient-*.npz"))
        assert finished == [f"ingredient-{i:05d}.npz" for i in range(3)]
