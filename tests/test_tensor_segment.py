"""Segment operations (the GAT attention substrate) vs naive references."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.tensor import (
    Tensor,
    gather,
    gradcheck,
    np_segment_max,
    np_segment_sum,
    segment_ids_from_indptr,
    segment_mean,
    segment_softmax,
    segment_sum,
)


def naive_segment_sum(vals: np.ndarray, indptr: np.ndarray) -> np.ndarray:
    return np.stack([vals[s:e].sum(axis=0) for s, e in zip(indptr[:-1], indptr[1:])])


def random_indptr(rng, n_segments: int, max_seg: int = 5) -> np.ndarray:
    counts = rng.integers(0, max_seg + 1, size=n_segments)
    return np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)


class TestRawKernels:
    def test_segment_ids(self):
        np.testing.assert_array_equal(
            segment_ids_from_indptr(np.array([0, 2, 2, 5])), [0, 0, 2, 2, 2]
        )

    def test_segment_sum_basic(self, rng):
        vals = rng.normal(size=7)
        indptr = np.array([0, 3, 3, 7])
        out = np_segment_sum(vals, indptr)
        np.testing.assert_allclose(out, [vals[:3].sum(), 0.0, vals[3:].sum()])

    def test_segment_sum_2d(self, rng):
        vals = rng.normal(size=(6, 3))
        indptr = np.array([0, 2, 6])
        np.testing.assert_allclose(np_segment_sum(vals, indptr), naive_segment_sum(vals, indptr))

    def test_segment_sum_empty_input(self):
        out = np_segment_sum(np.empty((0, 2)), np.array([0, 0, 0]))
        assert out.shape == (2, 2)
        np.testing.assert_allclose(out, 0.0)

    def test_segment_max_basic(self):
        vals = np.array([1.0, 5.0, -2.0, 3.0])
        out = np_segment_max(vals, np.array([0, 2, 2, 4]), empty_value=-9.0)
        np.testing.assert_allclose(out, [5.0, -9.0, 3.0])

    def test_segment_max_trailing_empty(self):
        vals = np.array([1.0, 2.0])
        out = np_segment_max(vals, np.array([0, 2, 2, 2]), empty_value=0.0)
        np.testing.assert_allclose(out, [2.0, 0.0, 0.0])

    @settings(max_examples=30, deadline=None)
    @given(n_seg=st.integers(1, 8), seed=st.integers(0, 2**31 - 1))
    def test_property_sum_matches_naive(self, n_seg, seed):
        rng = np.random.default_rng(seed)
        indptr = random_indptr(rng, n_seg)
        vals = rng.normal(size=(indptr[-1], 2))
        if indptr[-1] == 0:
            return
        np.testing.assert_allclose(
            np_segment_sum(vals, indptr), naive_segment_sum(vals, indptr), atol=1e-12
        )


class TestAutogradSegmentOps:
    def test_segment_sum_forward(self, rng):
        vals = rng.normal(size=(5, 2))
        indptr = np.array([0, 2, 5])
        out = segment_sum(Tensor(vals), indptr)
        np.testing.assert_allclose(out.data, naive_segment_sum(vals, indptr))

    def test_segment_sum_gradcheck(self, rng):
        indptr = np.array([0, 2, 2, 5])
        x = Tensor(rng.normal(size=(5, 2)), requires_grad=True)
        w = Tensor(rng.normal(size=(3, 2)))
        gradcheck(lambda x: (segment_sum(x, indptr) * w).sum(), [x])

    def test_segment_mean_empty_segment_zero(self, rng):
        vals = Tensor(rng.normal(size=(4, 2)))
        out = segment_mean(vals, np.array([0, 4, 4]))
        np.testing.assert_allclose(out.data[1], 0.0)

    def test_segment_mean_gradcheck(self, rng):
        indptr = np.array([0, 1, 4])
        x = Tensor(rng.normal(size=(4,)), requires_grad=True)
        gradcheck(lambda x: (segment_mean(x, indptr) ** 2).sum(), [x])

    def test_gather_forward(self, rng):
        vals = rng.normal(size=(4, 3))
        idx = np.array([3, 3, 0])
        np.testing.assert_allclose(gather(Tensor(vals), idx).data, vals[idx])

    def test_gather_gradcheck_repeated_indices(self, rng):
        idx = np.array([0, 0, 2, 1, 0])
        x = Tensor(rng.normal(size=(3, 2)), requires_grad=True)
        gradcheck(lambda x: (gather(x, idx) ** 2).sum(), [x])

    def test_segment_softmax_normalises_per_segment(self, rng):
        indptr = np.array([0, 3, 5, 9])
        scores = Tensor(rng.normal(size=9))
        out = segment_softmax(scores, indptr).data
        for s, e in zip(indptr[:-1], indptr[1:]):
            np.testing.assert_allclose(out[s:e].sum(), 1.0)

    def test_segment_softmax_multihead(self, rng):
        indptr = np.array([0, 2, 6])
        scores = Tensor(rng.normal(size=(6, 3)))
        out = segment_softmax(scores, indptr).data
        np.testing.assert_allclose(out[:2].sum(axis=0), np.ones(3))
        np.testing.assert_allclose(out[2:].sum(axis=0), np.ones(3))

    def test_segment_softmax_empty_segments_harmless(self, rng):
        indptr = np.array([0, 0, 4, 4])
        scores = Tensor(rng.normal(size=4))
        out = segment_softmax(scores, indptr).data
        assert np.isfinite(out).all()
        np.testing.assert_allclose(out.sum(), 1.0)

    def test_segment_softmax_matches_dense_softmax_single_segment(self, rng):
        scores = rng.normal(size=6)
        out = segment_softmax(Tensor(scores), np.array([0, 6])).data
        ref = np.exp(scores - scores.max())
        ref /= ref.sum()
        np.testing.assert_allclose(out, ref, atol=1e-12)

    def test_segment_softmax_shift_invariant_within_segment(self, rng):
        indptr = np.array([0, 3, 6])
        scores = rng.normal(size=6)
        shifted = scores.copy()
        shifted[:3] += 50.0  # shifting one whole segment must not change it
        a = segment_softmax(Tensor(scores), indptr).data
        b = segment_softmax(Tensor(shifted), indptr).data
        np.testing.assert_allclose(a, b, atol=1e-10)

    def test_segment_softmax_gradcheck_1d(self, rng):
        indptr = np.array([0, 2, 5, 7])
        w = Tensor(rng.normal(size=7))
        x = Tensor(rng.normal(size=7), requires_grad=True)
        gradcheck(lambda x: (segment_softmax(x, indptr) * w).sum(), [x])

    def test_segment_softmax_gradcheck_multihead(self, rng):
        indptr = np.array([0, 3, 5])
        w = Tensor(rng.normal(size=(5, 2)))
        x = Tensor(rng.normal(size=(5, 2)), requires_grad=True)
        gradcheck(lambda x: (segment_softmax(x, indptr) * w).sum(), [x])

    @settings(max_examples=20, deadline=None)
    @given(n_seg=st.integers(1, 6), seed=st.integers(0, 2**31 - 1))
    def test_property_softmax_segments_on_simplex(self, n_seg, seed):
        rng = np.random.default_rng(seed)
        indptr = random_indptr(rng, n_seg, max_seg=4)
        if indptr[-1] == 0:
            return
        out = segment_softmax(Tensor(rng.normal(size=indptr[-1]) * 3), indptr).data
        assert np.all(out >= 0) and np.all(out <= 1 + 1e-12)
        for s, e in zip(indptr[:-1], indptr[1:]):
            if e > s:
                np.testing.assert_allclose(out[s:e].sum(), 1.0, atol=1e-9)
