"""Unit + property tests for the MPI-style communicator substrate.

Covers point-to-point semantics (tag/source matching, ordering, wildcard
receive), every collective against its NumPy reference, the uppercase
buffer path, the SelfComm degenerate world, and failure modes (bad ranks,
size mismatches, deadlock timeout, rank exceptions aborting the world).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributed import (
    ANY_SOURCE,
    ANY_TAG,
    MAX,
    MIN,
    PROD,
    SUM,
    CommError,
    SelfComm,
    ThreadWorld,
    run_world,
)


# ---------------------------------------------------------------------------
# point-to-point
# ---------------------------------------------------------------------------


class TestPointToPoint:
    def test_send_recv_pair(self):
        def main(comm):
            if comm.rank == 0:
                comm.send({"a": 7, "b": 3.14}, dest=1, tag=11)
                return None
            return comm.recv(source=0, tag=11)

        results = run_world(2, main)
        assert results[1] == {"a": 7, "b": 3.14}

    def test_fifo_order_same_source_same_tag(self):
        def main(comm):
            if comm.rank == 0:
                for i in range(5):
                    comm.send(i, dest=1)
                return None
            return [comm.recv(source=0) for _ in range(5)]

        assert run_world(2, main)[1] == [0, 1, 2, 3, 4]

    def test_tag_matching_out_of_order(self):
        """A receive for tag B skips an earlier tag-A message in the inbox."""

        def main(comm):
            if comm.rank == 0:
                comm.send("first-tagA", dest=1, tag=1)
                comm.send("then-tagB", dest=1, tag=2)
                return None
            b = comm.recv(source=0, tag=2)
            a = comm.recv(source=0, tag=1)
            return (a, b)

        assert run_world(2, main)[1] == ("first-tagA", "then-tagB")

    def test_any_source_reports_actual_source(self):
        def main(comm):
            if comm.rank == 0:
                seen = set()
                for _ in range(2):
                    obj, src, tag = comm.recv_status(source=ANY_SOURCE, tag=ANY_TAG)
                    assert obj == f"hello-from-{src}"
                    seen.add(src)
                return seen
            comm.send(f"hello-from-{comm.rank}", dest=0)
            return None

        assert run_world(3, main)[0] == {1, 2}

    def test_specific_source_filters(self):
        def main(comm):
            if comm.rank == 0:
                got2 = comm.recv(source=2)
                got1 = comm.recv(source=1)
                return (got1, got2)
            comm.send(comm.rank * 10, dest=0)
            return None

        assert run_world(3, main)[0] == (10, 20)

    def test_send_to_bad_rank_raises(self):
        def main(comm):
            with pytest.raises(CommError, match="out of range"):
                comm.send(1, dest=5)
            return True

        assert run_world(2, main) == [True, True]

    def test_recv_timeout_surfaces_deadlock(self):
        def main(comm):
            if comm.rank == 1:
                with pytest.raises(CommError, match="timed out"):
                    comm.recv(source=0)
            return True

        assert run_world(2, main, timeout=0.2) == [True, True]

    def test_rank_exception_propagates_to_caller(self):
        def main(comm):
            if comm.rank == 1:
                raise ValueError("boom")
            return comm.rank

        with pytest.raises(CommError, match="rank 1 failed"):
            run_world(2, main)


# ---------------------------------------------------------------------------
# object collectives
# ---------------------------------------------------------------------------


class TestCollectives:
    @pytest.mark.parametrize("root", [0, 1, 3])
    def test_bcast_from_any_root(self, root):
        def main(comm):
            payload = {"init": [1, 2, 3]} if comm.rank == root else None
            return comm.bcast(payload, root=root)

        results = run_world(4, main)
        assert all(r == {"init": [1, 2, 3]} for r in results)

    def test_scatter_distributes_in_rank_order(self):
        def main(comm):
            seq = [f"item{r}" for r in range(comm.size)] if comm.rank == 0 else None
            return comm.scatter(seq, root=0)

        assert run_world(3, main) == ["item0", "item1", "item2"]

    def test_scatter_wrong_length_raises(self):
        def main(comm):
            if comm.rank == 0:
                with pytest.raises(CommError, match="exactly"):
                    comm.scatter([1], root=0)
            return True

        assert all(run_world(3, main, timeout=1.0))

    def test_gather_rank_order_at_root(self):
        def main(comm):
            return comm.gather((comm.rank + 1) ** 2, root=0)

        results = run_world(4, main)
        assert results[0] == [1, 4, 9, 16]
        assert results[1] is None and results[3] is None

    def test_allgather_everyone_sees_everything(self):
        results = run_world(4, lambda comm: comm.allgather(comm.rank * 2))
        assert results == [[0, 2, 4, 6]] * 4

    @pytest.mark.parametrize(
        "op,expected",
        [(SUM, 0 + 1 + 2 + 3), (PROD, 0), (MAX, 3), (MIN, 0)],
    )
    def test_reduce_ops(self, op, expected):
        results = run_world(4, lambda comm: comm.reduce(comm.rank, op=op, root=0))
        assert results[0] == expected
        assert all(r is None for r in results[1:])

    def test_allreduce_sum_matches_closed_form(self):
        n = 5
        results = run_world(n, lambda comm: comm.allreduce(comm.rank))
        assert results == [n * (n - 1) // 2] * n

    def test_reduce_arrays_elementwise(self):
        def main(comm):
            return comm.allreduce(np.full(3, float(comm.rank + 1)), op=PROD)

        for r in run_world(3, main):
            np.testing.assert_allclose(r, [6.0, 6.0, 6.0])

    def test_bad_root_raises(self):
        def main(comm):
            with pytest.raises(CommError, match="root"):
                comm.bcast(1, root=9)
            return True

        assert all(run_world(2, main, timeout=1.0))

    def test_barrier_synchronises(self):
        """No rank passes the barrier before every rank has reached it."""
        import threading

        arrived = []
        lock = threading.Lock()

        def main(comm):
            with lock:
                arrived.append(comm.rank)
            comm.barrier()
            with lock:
                return len(arrived)

        counts = run_world(4, main)
        assert all(c == 4 for c in counts)


# ---------------------------------------------------------------------------
# buffer (uppercase) API
# ---------------------------------------------------------------------------


class TestBufferAPI:
    def test_Send_Recv_into_preallocated_buffer(self):
        def main(comm):
            if comm.rank == 0:
                comm.Send(np.arange(6, dtype=np.float64), dest=1, tag=77)
                return None
            buf = np.empty(6, dtype=np.float64)
            comm.Recv(buf, source=0, tag=77)
            return buf

        np.testing.assert_array_equal(run_world(2, main)[1], np.arange(6.0))

    def test_Send_copies_payload(self):
        """Mutating the source array after Send must not corrupt the message."""

        def main(comm):
            if comm.rank == 0:
                arr = np.ones(4)
                comm.Send(arr, dest=1)
                arr[:] = -1.0
                return None
            buf = np.empty(4)
            comm.Recv(buf, source=0)
            return buf

        np.testing.assert_array_equal(run_world(2, main)[1], np.ones(4))

    def test_Recv_shape_mismatch_raises(self):
        def main(comm):
            if comm.rank == 0:
                comm.Send(np.zeros(3), dest=1)
                return True
            buf = np.empty(5)
            with pytest.raises(CommError, match="shape"):
                comm.Recv(buf, source=0)
            return True

        assert all(run_world(2, main))

    def test_Bcast_in_place(self):
        def main(comm):
            buf = np.arange(4.0) if comm.rank == 0 else np.zeros(4)
            comm.Bcast(buf, root=0)
            return buf

        for arr in run_world(3, main):
            np.testing.assert_array_equal(arr, np.arange(4.0))

    def test_Allreduce_matches_numpy_sum(self):
        def main(comm):
            send = np.full(4, float(comm.rank))
            recv = np.empty(4)
            comm.Allreduce(send, recv, op=SUM)
            return recv

        for arr in run_world(4, main):
            np.testing.assert_allclose(arr, np.full(4, 6.0))

    def test_Allreduce_shape_mismatch_raises(self):
        def main(comm):
            with pytest.raises(CommError, match="shapes differ"):
                comm.Allreduce(np.zeros(3), np.zeros(4))
            return True

        assert all(run_world(2, main, timeout=1.0))


# ---------------------------------------------------------------------------
# SelfComm (world of one)
# ---------------------------------------------------------------------------


class TestSelfComm:
    def test_collectives_are_identity(self):
        comm = SelfComm()
        assert comm.bcast({"x": 1}) == {"x": 1}
        assert comm.scatter(["only"]) == "only"
        assert comm.gather(42) == [42]
        assert comm.allgather("a") == ["a"]
        assert comm.reduce(5, op=SUM) == 5
        assert comm.allreduce(5, op=MAX) == 5
        comm.barrier()

    def test_self_send_then_recv(self):
        comm = SelfComm()
        comm.send("note", dest=0, tag=4)
        assert comm.recv(tag=4) == "note"

    def test_recv_without_send_raises_not_hangs(self):
        with pytest.raises(CommError, match="deadlock"):
            SelfComm().recv()

    def test_run_world_size_one_uses_selfcomm(self):
        results = run_world(1, lambda comm: (comm.size, comm.allreduce(3)))
        assert results == [(1, 3)]

    def test_world_size_zero_rejected(self):
        with pytest.raises(CommError, match="size"):
            ThreadWorld(0)


# ---------------------------------------------------------------------------
# property tests
# ---------------------------------------------------------------------------


class TestCommProperties:
    @settings(max_examples=20, deadline=None)
    @given(
        values=st.lists(
            st.floats(min_value=-1e3, max_value=1e3, allow_nan=False), min_size=2, max_size=6
        )
    )
    def test_allreduce_sum_equals_numpy_sum(self, values):
        results = run_world(len(values), lambda comm: comm.allreduce(values[comm.rank], op=SUM))
        expected = float(np.sum(values))
        for r in results:
            assert r == pytest.approx(expected, rel=1e-12, abs=1e-9)

    @settings(max_examples=20, deadline=None)
    @given(
        values=st.lists(st.integers(min_value=-50, max_value=50), min_size=2, max_size=6),
        op_idx=st.integers(min_value=0, max_value=2),
    )
    def test_reduce_matches_reference_fold(self, values, op_idx):
        op, ref = [(SUM, np.sum), (MAX, np.max), (MIN, np.min)][op_idx]
        results = run_world(len(values), lambda comm: comm.reduce(values[comm.rank], op=op, root=0))
        assert results[0] == ref(values)

    @settings(max_examples=15, deadline=None)
    @given(size=st.integers(min_value=2, max_value=6), root=st.integers(min_value=0, max_value=5))
    def test_scatter_gather_roundtrip(self, size, root):
        """gather(scatter(seq)) at the same root reconstructs seq."""
        root = root % size
        seq = [f"payload-{i}" for i in range(size)]

        def main(comm):
            mine = comm.scatter(seq if comm.rank == root else None, root=root)
            return comm.gather(mine, root=root)

        results = run_world(size, main)
        assert results[root] == seq

    @settings(max_examples=15, deadline=None)
    @given(size=st.integers(min_value=1, max_value=6))
    def test_allgather_is_rank_indexed(self, size):
        results = run_world(size, lambda comm: comm.allgather(comm.rank))
        for r in results:
            assert r == list(range(size))
