"""Training loop and metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.models import build_model
from repro.train import (
    TrainConfig,
    accuracy,
    confusion_matrix,
    evaluate,
    evaluate_logits,
    macro_f1,
    predictions,
    train_model,
)


class TestMetrics:
    def test_accuracy_perfect(self):
        logits = np.eye(4) * 10
        assert accuracy(logits, np.arange(4)) == 1.0

    def test_accuracy_zero(self):
        logits = np.eye(2)[[0, 0]] * 10
        assert accuracy(logits, np.array([1, 1])) == 0.0

    def test_accuracy_empty(self):
        assert accuracy(np.empty((0, 3)), np.empty(0)) == 0.0

    def test_predictions_argmax(self, rng):
        logits = rng.normal(size=(5, 3))
        np.testing.assert_array_equal(predictions(logits), logits.argmax(axis=1))

    def test_confusion_matrix(self):
        preds = np.array([0, 1, 1, 2])
        labels = np.array([0, 1, 2, 2])
        cm = confusion_matrix(preds, labels, 3)
        assert cm[0, 0] == 1 and cm[1, 1] == 1 and cm[2, 1] == 1 and cm[2, 2] == 1
        assert cm.sum() == 4

    def test_macro_f1_perfect(self):
        logits = np.eye(3) * 5
        assert macro_f1(logits, np.arange(3), 3) == 1.0

    def test_macro_f1_penalises_minority_errors(self, rng):
        # 90 correct majority, minority all wrong -> macro f1 well below accuracy
        logits = np.zeros((100, 2))
        logits[:, 0] = 10.0
        labels = np.concatenate([np.zeros(90), np.ones(10)]).astype(int)
        acc = accuracy(logits, labels)
        f1 = macro_f1(logits, labels, 2)
        assert acc == 0.9 and f1 < 0.6


class TestTrainConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            TrainConfig(epochs=0)
        with pytest.raises(ValueError):
            TrainConfig(optimizer="rmsprop")


class TestTrainModel:
    def test_training_beats_random(self, tiny_graph):
        m = build_model("gcn", tiny_graph.feature_dim, tiny_graph.num_classes, hidden_dim=16, seed=0)
        res = train_model(m, tiny_graph, TrainConfig(epochs=30, lr=0.02), seed=1)
        chance = 1.0 / tiny_graph.num_classes
        assert res.val_acc > 2 * chance
        assert res.test_acc > 2 * chance

    def test_result_fields(self, tiny_graph):
        m = build_model("gcn", tiny_graph.feature_dim, tiny_graph.num_classes, hidden_dim=8, seed=0)
        res = train_model(m, tiny_graph, TrainConfig(epochs=5, lr=0.01), seed=0)
        assert res.epochs_run == 5
        assert res.train_time > 0
        assert len(res.history) == 5
        assert set(res.state_dict) == set(m.state_dict())

    def test_best_val_state_restored(self, tiny_graph):
        m = build_model("gcn", tiny_graph.feature_dim, tiny_graph.num_classes, hidden_dim=8, seed=0)
        res = train_model(m, tiny_graph, TrainConfig(epochs=20, lr=0.05), seed=2)
        # model must end loaded with the recorded best state
        for name, p in m.named_parameters():
            np.testing.assert_array_equal(p.data, res.state_dict[name])
        best_hist = max(h[2] for h in res.history)
        assert res.val_acc == pytest.approx(best_hist)

    def test_early_stopping_cuts_epochs(self, tiny_graph):
        m = build_model("gcn", tiny_graph.feature_dim, tiny_graph.num_classes, hidden_dim=8, seed=0)
        res = train_model(m, tiny_graph, TrainConfig(epochs=300, lr=0.05, early_stopping=5), seed=0)
        assert res.epochs_run < 300

    def test_seed_determinism(self, tiny_graph):
        cfg = TrainConfig(epochs=10, lr=0.02)
        r1 = train_model(
            build_model("gcn", tiny_graph.feature_dim, tiny_graph.num_classes, hidden_dim=8, seed=0),
            tiny_graph, cfg, seed=5,
        )
        r2 = train_model(
            build_model("gcn", tiny_graph.feature_dim, tiny_graph.num_classes, hidden_dim=8, seed=0),
            tiny_graph, cfg, seed=5,
        )
        for name in r1.state_dict:
            np.testing.assert_array_equal(r1.state_dict[name], r2.state_dict[name])

    def test_different_seeds_different_states(self, tiny_graph):
        cfg = TrainConfig(epochs=10, lr=0.02)
        r1 = train_model(
            build_model("gcn", tiny_graph.feature_dim, tiny_graph.num_classes, hidden_dim=8, seed=0),
            tiny_graph, cfg, seed=1,
        )
        r2 = train_model(
            build_model("gcn", tiny_graph.feature_dim, tiny_graph.num_classes, hidden_dim=8, seed=0),
            tiny_graph, cfg, seed=2,
        )
        diffs = [not np.array_equal(r1.state_dict[n], r2.state_dict[n]) for n in r1.state_dict]
        assert any(diffs)

    def test_minibatch_path(self, tiny_graph):
        m = build_model("sage", tiny_graph.feature_dim, tiny_graph.num_classes, hidden_dim=8, seed=0)
        cfg = TrainConfig(epochs=8, lr=0.02, minibatch=True, batch_size=32, fanout=4)
        res = train_model(m, tiny_graph, cfg, seed=0)
        chance = 1.0 / tiny_graph.num_classes
        assert res.val_acc > chance

    def test_sgd_with_cosine(self, tiny_graph):
        m = build_model("gcn", tiny_graph.feature_dim, tiny_graph.num_classes, hidden_dim=8, seed=0)
        cfg = TrainConfig(epochs=10, lr=0.1, optimizer="sgd", cosine_schedule=True)
        res = train_model(m, tiny_graph, cfg, seed=0)
        assert res.val_acc > 0.0


class TestEvaluate:
    def test_evaluate_logits_inference_mode(self, tiny_graph):
        m = build_model("gcn", tiny_graph.feature_dim, tiny_graph.num_classes, hidden_dim=8, seed=0)
        m.train()
        logits = evaluate_logits(m, tiny_graph)
        assert logits.shape == (tiny_graph.num_nodes, tiny_graph.num_classes)
        assert m.training  # mode restored

    def test_evaluate_on_split(self, tiny_graph):
        m = build_model("gcn", tiny_graph.feature_dim, tiny_graph.num_classes, hidden_dim=8, seed=0)
        acc = evaluate(m, tiny_graph, tiny_graph.test_idx)
        assert 0.0 <= acc <= 1.0


class TestEpochResume:
    """Mid-training snapshot/resume (per-epoch checkpoint contract): a run
    resumed from any epoch snapshot finishes bit-identical to an
    uninterrupted one — parameters, optimizer moments, RNG stream, best-val
    bookkeeping and early-stopping state all continue where they stopped."""

    def _model(self, graph, seed=0):
        return build_model("gcn", graph.feature_dim, graph.num_classes, hidden_dim=8, seed=seed)

    def _assert_resumes_identically(self, graph, cfg, seed=3):
        reference = train_model(self._model(graph), graph, cfg, seed=seed)
        snapshots = {}
        train_model(
            self._model(graph), graph, cfg, seed=seed,
            on_epoch_end=lambda epoch, snapshot: snapshots.__setitem__(epoch, snapshot()),
        )
        assert snapshots, "hook never fired"
        for epoch, state in snapshots.items():
            resumed = train_model(self._model(graph), graph, cfg, seed=seed, epoch_state=state)
            for name in reference.state_dict:
                np.testing.assert_array_equal(
                    reference.state_dict[name], resumed.state_dict[name], err_msg=f"epoch {epoch}"
                )
            assert resumed.val_acc == reference.val_acc
            assert resumed.test_acc == reference.test_acc
            assert resumed.epochs_run == reference.epochs_run

    def test_resume_bit_identical_adam(self, tiny_graph):
        self._assert_resumes_identically(tiny_graph, TrainConfig(epochs=6, lr=0.02))

    def test_resume_bit_identical_sgd_cosine(self, tiny_graph):
        self._assert_resumes_identically(
            tiny_graph,
            TrainConfig(epochs=6, lr=0.05, optimizer="sgd", momentum=0.9, cosine_schedule=True),
        )

    def test_resume_bit_identical_minibatch(self, tiny_graph):
        """The sampler consumes the RNG stream; resume must continue it."""
        self._assert_resumes_identically(
            tiny_graph, TrainConfig(epochs=4, lr=0.02, minibatch=True, batch_size=32)
        )

    def test_resume_bit_identical_early_stopping(self, tiny_graph):
        self._assert_resumes_identically(
            tiny_graph, TrainConfig(epochs=25, lr=0.02, early_stopping=3, eval_every=2)
        )

    def test_snapshot_is_lazy(self, tiny_graph):
        """The hook receives a closure; not calling it must cost nothing
        and train exactly as without a hook."""
        cfg = TrainConfig(epochs=5, lr=0.02)
        reference = train_model(self._model(tiny_graph), tiny_graph, cfg, seed=1)
        epochs_seen = []
        hooked = train_model(
            self._model(tiny_graph), tiny_graph, cfg, seed=1,
            on_epoch_end=lambda epoch, snapshot: epochs_seen.append(epoch),
        )
        assert epochs_seen == [1, 2, 3, 4, 5]
        for name in reference.state_dict:
            np.testing.assert_array_equal(reference.state_dict[name], hooked.state_dict[name])

    def test_snapshot_fields(self, tiny_graph):
        cfg = TrainConfig(epochs=4, lr=0.02)
        snapshots = {}
        train_model(
            self._model(tiny_graph), tiny_graph, cfg, seed=2,
            on_epoch_end=lambda epoch, snapshot: snapshots.__setitem__(epoch, snapshot()),
        )
        state = snapshots[3]
        assert state.epoch == 3
        assert state.scheduler_last_epoch == 3
        assert state.rng_state["bit_generator"]
        assert state.best_epoch <= 3
        assert len(state.history) == 3
        assert state.elapsed > 0
        assert set(state.model_state) == set(state.best_state)

    def test_accumulated_train_time(self, tiny_graph):
        """A resumed run's train_time includes the pre-snapshot seconds."""
        cfg = TrainConfig(epochs=6, lr=0.02)
        snapshots = {}
        train_model(
            self._model(tiny_graph), tiny_graph, cfg, seed=4,
            on_epoch_end=lambda epoch, snapshot: snapshots.__setitem__(epoch, snapshot()),
        )
        resumed = train_model(
            self._model(tiny_graph), tiny_graph, cfg, seed=4, epoch_state=snapshots[3]
        )
        assert resumed.train_time >= snapshots[3].elapsed
