"""Serving-layer tests: cache, served model, frontend, CLI round trip.

The load-bearing property is the serving determinism contract: identical
request sets produce bit-identical predictions regardless of arrival
order, coalescing, caching, backend, or mid-request worker death. Every
test here ultimately compares against the same reference — one
:func:`evaluate_logits` pass of the souped state on the driver.
"""

from __future__ import annotations

import os
import signal
import threading
import time

import numpy as np
import pytest

from repro.cli import main
from repro.serve import NodeCache, PredictionServer, ServeClient, ServeConfig, ServeError
from repro.serve.loadgen import run_load
from repro.serve.model import ServedModel, state_digest
from repro.serve.server import _AdaptiveLimit
from repro.soup import soup
from repro.soup.ensemble import _softmax
from repro.train import evaluate_logits


@pytest.fixture(scope="module")
def served(gcn_pool, tiny_graph):
    """The soup state, its reference scores, and the pool/graph pair."""
    result = soup("us", gcn_pool, tiny_graph)
    model = gcn_pool.make_model()
    model.load_state_dict(result.state_dict)
    ref = evaluate_logits(model, tiny_graph)
    return gcn_pool, tiny_graph, result.state_dict, ref


@pytest.fixture(scope="module")
def serial_server(served):
    pool, graph, state, _ref = served
    config = ServeConfig(backend="serial", cache_nodes=64, max_wait_s=0.001)
    with PredictionServer(pool.model_config, graph, [state], config=config) as srv:
        srv.start()
        yield srv


class TestNodeCache:
    def test_miss_then_hit(self):
        cache = NodeCache(4)
        hits, misses = cache.lookup([1, 2, 1])
        assert hits == {} and misses == [1, 2]  # dedup, first-appearance order
        cache.insert({1: np.array([1.0]), 2: np.array([2.0])})
        hits, misses = cache.lookup([2, 1, 2])
        assert misses == [] and set(hits) == {1, 2}
        assert cache.info()["hits"] == 3  # each hit lookup counted, dup included

    def test_lru_eviction(self):
        cache = NodeCache(2)
        cache.insert({1: np.array([1.0]), 2: np.array([2.0])})
        cache.lookup([1])  # 1 is now most-recently used
        cache.insert({3: np.array([3.0])})
        hits, misses = cache.lookup([1, 2, 3])
        assert set(hits) == {1, 3} and misses == [2]
        assert cache.evictions == 1

    def test_rows_are_exact(self):
        cache = NodeCache(4)
        row = np.array([0.1, -2.5, 3.25])
        cache.insert({7: row})
        hits, _ = cache.lookup([7])
        assert np.array_equal(hits[7], row)

    def test_zero_capacity_disables(self):
        cache = NodeCache(0)
        cache.insert({1: np.array([1.0])})
        hits, misses = cache.lookup([1])
        assert hits == {} and misses == [1] and len(cache) == 0

    def test_clear_drops_entries(self):
        cache = NodeCache(4)
        cache.insert({1: np.array([1.0])})
        cache.clear()
        assert len(cache) == 0
        assert cache.lookup([1])[1] == [1]

    @pytest.mark.parametrize("capacity", [-1, 1.5, True, "8"])
    def test_rejects_bad_capacity(self, capacity):
        with pytest.raises(ValueError):
            NodeCache(capacity)


class TestServedModel:
    def test_matches_reference_logits(self, served):
        pool, graph, state, ref = served
        model = ServedModel(pool.model_config, graph, [state])
        rows = model.scores_at([3, 0, 3, 9])
        assert set(rows) == {0, 3, 9}
        for node, row in rows.items():
            assert np.array_equal(row, ref[node])

    def test_rows_independent_of_batch_composition(self, served):
        pool, graph, state, _ref = served
        model = ServedModel(pool.model_config, graph, [state])
        alone = model.scores_at([11])[11]
        crowded = model.scores_at(range(graph.num_nodes))[11]
        assert np.array_equal(alone, crowded)

    def test_ensemble_matches_logit_ensemble(self, served):
        pool, graph, _state, _ref = served
        model = ServedModel(pool.model_config, graph, [dict(s) for s in pool.states], ensemble=True)
        worker = pool.make_model()
        per = []
        for s in pool.states:
            worker.load_state_dict(s)
            per.append(evaluate_logits(worker, graph))
        expected = _softmax(np.stack(per)).mean(axis=0)
        rows = model.scores_at([0, 5])
        assert np.array_equal(rows[0], expected[0])
        assert np.array_equal(rows[5], expected[5])

    def test_digest_identifies_parameters(self, served):
        pool, graph, state, _ref = served
        a = ServedModel(pool.model_config, graph, [state]).digest
        assert a == state_digest([state])
        perturbed = {k: v + (1e-12 if k == next(iter(state)) else 0) for k, v in state.items()}
        assert state_digest([perturbed]) != a

    def test_rejects_out_of_range_ids(self, served):
        pool, graph, state, _ref = served
        model = ServedModel(pool.model_config, graph, [state])
        with pytest.raises(ValueError, match="outside"):
            model.scores_at([graph.num_nodes])

    def test_rejects_multi_state_without_ensemble(self, served):
        pool, graph, _state, _ref = served
        with pytest.raises(ValueError, match="exactly one state"):
            ServedModel(pool.model_config, graph, [dict(s) for s in pool.states])


class TestAdaptiveLimit:
    def test_grows_under_backlog_and_decays_when_idle(self):
        limit = _AdaptiveLimit(base=8, cap=64)
        limit.on_flush(batch_size=8, backlog=20)  # backlog > limit -> grow
        assert limit.value == 16
        limit.on_flush(batch_size=16, backlog=40)
        assert limit.value == 32
        for _ in range(8):  # 8 consecutive under-quarter-full flushes -> decay
            limit.on_flush(batch_size=1, backlog=0)
        assert limit.value == 16

    def test_bounded_by_cap_and_base(self):
        limit = _AdaptiveLimit(base=8, cap=16)
        for _ in range(10):
            limit.on_flush(batch_size=limit.value, backlog=1000)
        assert limit.value == 16
        for _ in range(100):
            limit.on_flush(batch_size=1, backlog=0)
        assert limit.value == 8


class TestServeConfig:
    def test_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="backend"):
            ServeConfig(backend="gpu").validate()

    def test_nodes_require_tcp(self):
        with pytest.raises(ValueError, match="tcp"):
            ServeConfig(backend="pipe", nodes=["h:1"]).validate()

    @pytest.mark.parametrize("kwargs", [
        {"max_batch": 0}, {"max_wait_s": -1.0}, {"cache_nodes": -1},
        {"backend": "pipe", "num_workers": 0},
    ])
    def test_rejects_bad_knobs(self, kwargs):
        with pytest.raises(ValueError):
            ServeConfig(**kwargs).validate()


class TestPredictionServerSerial:
    def test_hello_carries_identity(self, serial_server, served):
        _pool, graph, state, _ref = served
        host, port = serial_server.address
        with ServeClient(host, port) as client:
            assert client.info["digest"] == state_digest([state])
            assert client.info["num_nodes"] == graph.num_nodes
            assert client.ping()

    def test_predictions_match_reference(self, serial_server, served):
        _pool, _graph, _state, ref = served
        host, port = serial_server.address
        with ServeClient(host, port) as client:
            ids = [5, 3, 5, 0, 150]
            scores = client.predict(ids)
            assert scores.shape == (len(ids), ref.shape[1])
            assert np.array_equal(scores, ref[ids])
            labels = client.predict_labels([8, 2])
            assert np.array_equal(labels, np.argmax(ref[[8, 2]], axis=-1))

    def test_any_arrival_order_is_bit_identical(self, serial_server, served):
        """Same request set, shuffled arrival, pipelined + concurrent
        clients -> every reply identical to the serial reference."""
        _pool, graph, _state, ref = served
        host, port = serial_server.address
        rng = np.random.default_rng(5)
        request_sets = [rng.integers(0, graph.num_nodes, size=6) for _ in range(12)]

        def drive(order, out):
            with ServeClient(host, port) as client:
                pending = [(client.predict_async(request_sets[i]), i) for i in order]
                for rid, i in pending[::-1]:  # collect out of order too
                    out[i] = client.collect(rid)

        by_order: list[dict] = [{}, {}]
        threads = [
            threading.Thread(target=drive, args=(order, by_order[j]))
            for j, order in enumerate([list(range(12)), list(range(11, -1, -1))])
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for out in by_order:
            assert set(out) == set(range(12))
            for i, scores in out.items():
                assert np.array_equal(scores, ref[request_sets[i]])

    def test_cache_hits_accumulate(self, serial_server):
        host, port = serial_server.address
        with ServeClient(host, port) as client:
            before = client.stats()["cache"]
            client.predict([70, 71, 72])
            mid = client.stats()["cache"]
            assert mid["misses"] >= before["misses"]  # cold nodes missed
            client.predict([70, 71, 72])
            after = client.stats()["cache"]
            assert after["hits"] >= mid["hits"] + 3
            assert after["misses"] == mid["misses"]

    def test_out_of_range_request_fails_cleanly(self, serial_server, served):
        _pool, graph, _state, ref = served
        host, port = serial_server.address
        with ServeClient(host, port) as client:
            with pytest.raises(ServeError, match="outside"):
                client.predict([graph.num_nodes + 5])
            # the connection and server survive the rejected request
            assert np.array_equal(client.predict([1]), ref[[1]])

    def test_empty_request(self, serial_server, served):
        _pool, _graph, _state, ref = served
        host, port = serial_server.address
        with ServeClient(host, port) as client:
            scores = client.predict([])
            assert scores.shape == (0, ref.shape[1])

    def test_loadgen_verifies_and_reports(self, serial_server):
        host, port = serial_server.address
        out = run_load(host, port, requests=30, clients=2, pipeline=2,
                       nodes_per_request=4, seed=3)
        assert out["requests"] == 30
        assert out["verified"] is True
        assert out["latency_s"]["p99"] >= out["latency_s"]["p50"] >= 0
        assert out["server_stats"]["replies"] >= 30


class TestPredictionServerCluster:
    @pytest.mark.parametrize("backend", ["pipe", "tcp"])
    def test_backends_bit_identical_to_serial(self, served, backend):
        pool, graph, state, ref = served
        config = ServeConfig(backend=backend, num_workers=2, cache_nodes=0, max_wait_s=0.001)
        with PredictionServer(pool.model_config, graph, [state], config=config) as srv:
            srv.start()
            host, port = srv.address
            with ServeClient(host, port) as client:
                ids = list(range(0, 40))
                assert np.array_equal(client.predict(ids), ref[ids])

    def test_worker_death_mid_request_recovers(self, served):
        """SIGKILL one of two tcp workers with a request in flight: the
        cluster stream resubmits the lost flush and the reply is still
        bit-identical. (tcp: a dead worker only takes its own socket.)"""
        pool, graph, state, ref = served
        config = ServeConfig(backend="tcp", num_workers=2, cache_nodes=0, max_wait_s=0.001)
        with PredictionServer(pool.model_config, graph, [state], config=config) as srv:
            srv.start()
            host, port = srv.address
            with ServeClient(host, port, timeout=120.0) as client:
                assert np.array_equal(client.predict([0, 1]), ref[[0, 1]])  # warm init
                transport = srv._backend.transport
                victim = next(w.proc.pid for w in transport._workers.values() if w.proc is not None)
                rid = client.predict_async(list(range(50, 90)))
                os.kill(victim, signal.SIGKILL)
                scores = client.collect(rid)
                assert np.array_equal(scores, ref[50:90])
                # and the server keeps serving afterwards
                assert np.array_equal(client.predict([120]), ref[[120]])

    def test_ensemble_over_workers_matches_serial_ensemble(self, served):
        pool, graph, _state, _ref = served
        states = [dict(s) for s in pool.states]
        serial = ServedModel(pool.model_config, graph, states, ensemble=True)
        expected = serial.scores_at([0, 33, 150])
        config = ServeConfig(backend="pipe", num_workers=2, cache_nodes=8, max_wait_s=0.001)
        with PredictionServer(pool.model_config, graph, states, ensemble=True, config=config) as srv:
            srv.start()
            host, port = srv.address
            with ServeClient(host, port) as client:
                assert client.info["ensemble"] is True
                scores = client.predict([0, 33, 150])
                assert np.array_equal(scores[0], expected[0])
                assert np.array_equal(scores[1], expected[33])
                assert np.array_equal(scores[2], expected[150])


class TestServeCli:
    def test_cli_round_trip(self, tmp_path, monkeypatch):
        """`repro serve` end to end: train a tiny pool, serve it, drive it
        with the load generator, shut it down over the wire."""
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        port_file = tmp_path / "serve.port"
        rc: dict = {}

        def serve():
            rc["code"] = main([
                "serve", "us", "gcn", "flickr", "--scale", "0.05", "-n", "2",
                "--serve-port-file", str(port_file), "--max-wait-ms", "1",
            ])

        thread = threading.Thread(target=serve, daemon=True)
        thread.start()
        deadline = time.monotonic() + 120
        while not port_file.exists() and time.monotonic() < deadline:
            time.sleep(0.1)
        assert port_file.exists(), "server never wrote its port file"
        host, port = port_file.read_text().split()
        out = run_load(host, int(port), requests=20, clients=2, pipeline=2,
                       nodes_per_request=4, seed=1)
        assert out["verified"] is True
        with ServeClient(host, int(port)) as client:
            assert client.shutdown()
        thread.join(timeout=60)
        assert not thread.is_alive() and rc["code"] == 0

    def test_cli_rejects_ensemble_vote(self, capsys):
        with pytest.raises(SystemExit, match="ensemble-vote"):
            main(["serve", "ensemble-vote", "gcn", "flickr"])

    def test_cli_rejects_unknown_method(self, capsys):
        assert main(["serve", "nope", "gcn", "flickr"]) == 2
        assert "unknown method" in capsys.readouterr().err


class TestCleanPathErrors:
    def test_summarize_missing_report(self):
        with pytest.raises(SystemExit, match="cannot read telemetry report"):
            main(["telemetry", "summarize", "/nonexistent/report.json"])

    def test_summarize_malformed_report(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("not json at all")
        with pytest.raises(SystemExit, match="not a telemetry report"):
            main(["telemetry", "summarize", str(bad)])

    def test_loadgen_missing_port_file(self):
        from repro.serve.loadgen import main as loadgen_main

        with pytest.raises(SystemExit, match="cannot read port file"):
            loadgen_main(["--port-file", "/nonexistent/serve.port"])
