"""Baseline souping methods: US, Greedy (Alg. 1), GIS (Alg. 2), ensembles."""

from __future__ import annotations

import numpy as np
import pytest

from repro.soup import (
    average,
    eval_state,
    gis_soup,
    greedy_soup,
    logit_ensemble,
    uniform_soup,
    vote_ensemble,
)


class TestUniformSoup:
    def test_state_is_exact_mean(self, gcn_pool, tiny_graph):
        result = uniform_soup(gcn_pool, tiny_graph)
        expected = average(gcn_pool.states)
        for name in expected:
            np.testing.assert_allclose(result.state_dict[name], expected[name])

    def test_accuracies_in_range(self, gcn_pool, tiny_graph):
        result = uniform_soup(gcn_pool, tiny_graph)
        assert 0.0 <= result.val_acc <= 1.0
        assert 0.0 <= result.test_acc <= 1.0

    def test_method_label(self, gcn_pool, tiny_graph):
        assert uniform_soup(gcn_pool, tiny_graph).method == "us"

    def test_deterministic(self, gcn_pool, tiny_graph):
        a = uniform_soup(gcn_pool, tiny_graph)
        b = uniform_soup(gcn_pool, tiny_graph)
        assert a.test_acc == b.test_acc

    def test_fastest_method(self, gcn_pool, tiny_graph):
        """Paper §V-B: US 'nearly always performs best' on time."""
        us = uniform_soup(gcn_pool, tiny_graph)
        gis = gis_soup(gcn_pool, tiny_graph, granularity=10)
        assert us.soup_time < gis.soup_time

    def test_no_forward_low_memory(self, gcn_pool, tiny_graph):
        """US does no forward pass: its peak is far below GIS's."""
        us = uniform_soup(gcn_pool, tiny_graph)
        gis = gis_soup(gcn_pool, tiny_graph, granularity=10)
        assert us.peak_memory < gis.peak_memory


class TestGreedySoup:
    def test_val_at_least_best_ingredient(self, gcn_pool, tiny_graph):
        """Algorithm 1 starts from the best ingredient and only accepts
        non-degrading additions, so soup val >= best ingredient val."""
        result = greedy_soup(gcn_pool, tiny_graph)
        model = gcn_pool.make_model()
        best = max(
            eval_state(model, sd, tiny_graph, "val") for sd in gcn_pool.states
        )
        assert result.val_acc >= best - 1e-9

    def test_members_recorded(self, gcn_pool, tiny_graph):
        result = greedy_soup(gcn_pool, tiny_graph)
        members = result.extras["members"]
        assert 1 <= len(members) <= len(gcn_pool)
        assert members[0] == gcn_pool.best_index

    def test_soup_is_average_of_members(self, gcn_pool, tiny_graph):
        result = greedy_soup(gcn_pool, tiny_graph)
        expected = average([gcn_pool.states[i] for i in result.extras["members"]])
        for name in expected:
            np.testing.assert_allclose(result.state_dict[name], expected[name])

    def test_deterministic(self, gcn_pool, tiny_graph):
        a = greedy_soup(gcn_pool, tiny_graph)
        b = greedy_soup(gcn_pool, tiny_graph)
        assert a.extras["members"] == b.extras["members"]


class TestGISSoup:
    def test_val_monotone_vs_best_ingredient(self, gcn_pool, tiny_graph):
        """alpha=0 always reproduces the current soup, so GIS's val accuracy
        can never fall below the best single ingredient's."""
        result = gis_soup(gcn_pool, tiny_graph, granularity=10)
        model = gcn_pool.make_model()
        best = max(eval_state(model, sd, tiny_graph, "val") for sd in gcn_pool.states)
        assert result.val_acc >= best - 1e-9

    def test_forward_pass_count(self, gcn_pool, tiny_graph):
        """Cost model §III-E: exactly 1 + (N-1) * g validation passes."""
        g = 7
        result = gis_soup(gcn_pool, tiny_graph, granularity=g)
        assert result.extras["forward_passes"] == 1 + (len(gcn_pool) - 1) * g

    def test_chosen_ratios_within_unit_interval(self, gcn_pool, tiny_graph):
        result = gis_soup(gcn_pool, tiny_graph, granularity=10)
        ratios = result.extras["chosen_ratios"]
        assert len(ratios) == len(gcn_pool) - 1
        assert all(0.0 <= r <= 1.0 for r in ratios)

    def test_granularity_validation(self, gcn_pool, tiny_graph):
        with pytest.raises(ValueError):
            gis_soup(gcn_pool, tiny_graph, granularity=1)

    def test_deterministic(self, gcn_pool, tiny_graph):
        a = gis_soup(gcn_pool, tiny_graph, granularity=8)
        b = gis_soup(gcn_pool, tiny_graph, granularity=8)
        assert a.test_acc == b.test_acc
        assert a.extras["chosen_ratios"] == b.extras["chosen_ratios"]

    def test_higher_granularity_costs_more_time(self, gcn_pool, tiny_graph):
        """O(N g F_v): doubling g should clearly increase wall time."""
        fast = gis_soup(gcn_pool, tiny_graph, granularity=4)
        slow = gis_soup(gcn_pool, tiny_graph, granularity=24)
        assert slow.soup_time > fast.soup_time

    def test_single_ingredient_pool(self, gcn_pool, tiny_graph):
        solo = gcn_pool.subset([0])
        result = gis_soup(solo, tiny_graph, granularity=5)
        for name, v in result.state_dict.items():
            np.testing.assert_allclose(v, gcn_pool.states[0][name])


class TestEnsembles:
    def test_logit_ensemble_beats_worst_ingredient(self, gcn_pool, tiny_graph):
        result = logit_ensemble(gcn_pool, tiny_graph)
        assert result.test_acc >= min(gcn_pool.test_accs) - 0.05

    def test_vote_ensemble_runs(self, gcn_pool, tiny_graph):
        result = vote_ensemble(gcn_pool, tiny_graph)
        assert 0.0 <= result.test_acc <= 1.0
        assert result.extras["inference_passes"] == len(gcn_pool)

    def test_ensembles_have_no_single_state(self, gcn_pool, tiny_graph):
        assert logit_ensemble(gcn_pool, tiny_graph).state_dict == {}
        assert vote_ensemble(gcn_pool, tiny_graph).state_dict == {}

    def test_ensemble_slower_than_uniform_soup(self, gcn_pool, tiny_graph):
        """The motivation for soups: N inference passes vs zero."""
        ens = logit_ensemble(gcn_pool, tiny_graph)
        us = uniform_soup(gcn_pool, tiny_graph)
        assert ens.soup_time > us.soup_time


class TestGISMinibatchedValidation:
    """§II-B: minibatching bounds GIS memory but extends execution time."""

    def test_batched_accuracy_identical(self, gcn_pool, tiny_graph):
        full = gis_soup(gcn_pool, tiny_graph, granularity=6)
        batched = gis_soup(gcn_pool, tiny_graph, granularity=6, val_batch_size=16)
        assert batched.val_acc == pytest.approx(full.val_acc)
        assert batched.test_acc == pytest.approx(full.test_acc)
        for name in full.state_dict:
            np.testing.assert_allclose(batched.state_dict[name], full.state_dict[name])

    def test_batched_takes_longer(self, small_pool, small_graph):
        full = gis_soup(small_pool, small_graph, granularity=8)
        batched = gis_soup(small_pool, small_graph, granularity=8, val_batch_size=8)
        assert batched.soup_time > full.soup_time  # the paper's trade-off

    def test_invalid_batch_size(self, gcn_pool, tiny_graph):
        with pytest.raises(ValueError):
            gis_soup(gcn_pool, tiny_graph, val_batch_size=0)

    def test_batch_size_recorded(self, gcn_pool, tiny_graph):
        result = gis_soup(gcn_pool, tiny_graph, granularity=4, val_batch_size=32)
        assert result.extras["val_batch_size"] == 32
