"""Learned Souping (Algorithm 3): mechanics, gradients, paper properties."""

from __future__ import annotations

import numpy as np
import pytest

from repro.soup import SoupConfig, learned_soup, uniform_soup
from repro.soup.learned import alpha_weights, build_alpha, split_validation


FAST = dict(epochs=12, lr=0.5)


class TestConfig:
    def test_defaults_valid(self):
        SoupConfig()

    def test_epoch_validation(self):
        with pytest.raises(ValueError):
            SoupConfig(epochs=0)

    def test_holdout_validation(self):
        with pytest.raises(ValueError):
            SoupConfig(holdout_fraction=1.0)

    def test_normalize_validation(self):
        with pytest.raises(ValueError):
            SoupConfig(normalize="l2")

    def test_alpha_init_validation(self):
        with pytest.raises(ValueError):
            SoupConfig(alpha_init="he")


class TestAlphaMechanics:
    def test_build_alpha_shape(self, rng):
        a = build_alpha(5, 3, SoupConfig(), rng)
        assert a.shape == (5, 3) and a.requires_grad

    def test_uniform_init_gives_equal_mixture(self, rng):
        cfg = SoupConfig(alpha_init="uniform")
        a = build_alpha(4, 2, cfg, rng)
        w = alpha_weights(a, cfg).data
        np.testing.assert_allclose(w, 0.25)

    def test_softmax_weights_on_simplex(self, rng):
        cfg = SoupConfig()
        a = build_alpha(6, 4, cfg, rng)
        w = alpha_weights(a, cfg).data
        np.testing.assert_allclose(w.sum(axis=0), np.ones(4))
        assert np.all(w > 0)  # §V-A: the softmax floor — never exactly zero

    def test_no_normalization_passthrough(self, rng):
        cfg = SoupConfig(normalize="none")
        a = build_alpha(3, 2, cfg, rng)
        assert alpha_weights(a, cfg) is a

    def test_uniform_init_is_equal_mixture_under_every_normalizer(self, rng):
        """'uniform' init must realise the exact 1/N mixture at step 0
        whatever the normaliser (raw zero alphas would build the zero
        model when normalize='none')."""
        for norm in ("softmax", "sparsemax", "none"):
            cfg = SoupConfig(normalize=norm, alpha_init="uniform")
            a = build_alpha(4, 3, cfg, rng)
            w = alpha_weights(a, cfg)
            np.testing.assert_allclose(w.data, np.full((4, 3), 0.25), atol=1e-12)

    def test_split_validation_partitions_val(self, tiny_graph, rng):
        train_idx, hold_idx = split_validation(tiny_graph, 0.3, rng)
        assert len(np.intersect1d(train_idx, hold_idx)) == 0
        combined = np.sort(np.concatenate([train_idx, hold_idx]))
        np.testing.assert_array_equal(combined, tiny_graph.val_idx)

    def test_split_validation_zero_fraction(self, tiny_graph, rng):
        train_idx, hold_idx = split_validation(tiny_graph, 0.0, rng)
        np.testing.assert_array_equal(train_idx, tiny_graph.val_idx)
        np.testing.assert_array_equal(hold_idx, tiny_graph.val_idx)


class TestLearnedSoup:
    def test_result_structure(self, gcn_pool, tiny_graph):
        result = learned_soup(gcn_pool, tiny_graph, SoupConfig(**FAST))
        assert result.method == "ls"
        assert set(result.state_dict) == set(gcn_pool.states[0])
        assert result.extras["alphas"].shape[0] == len(gcn_pool)
        assert result.soup_time > 0 and result.peak_memory > 0

    def test_weights_simplex_per_group(self, gcn_pool, tiny_graph):
        result = learned_soup(gcn_pool, tiny_graph, SoupConfig(**FAST))
        w = result.extras["weights"]
        np.testing.assert_allclose(w.sum(axis=0), np.ones(w.shape[1]), atol=1e-9)

    def test_soup_state_is_weighted_combination(self, gcn_pool, tiny_graph):
        result = learned_soup(gcn_pool, tiny_graph, SoupConfig(**FAST))
        w = result.extras["weights"]
        group_names = result.extras["group_names"]
        stacks = gcn_pool.stacked_params()
        from repro.soup.state import layer_groups

        groups, names_check = layer_groups(gcn_pool.param_names(), "layer")
        assert names_check == group_names
        for name, g in zip(gcn_pool.param_names(), groups):
            expected = np.tensordot(w[:, g], stacks[name], axes=(0, 0))
            np.testing.assert_allclose(result.state_dict[name], expected)

    def test_training_reduces_loss(self, gcn_pool, tiny_graph):
        result = learned_soup(gcn_pool, tiny_graph, SoupConfig(epochs=30, lr=0.5))
        history = result.extras["history"]
        first_loss = history[0][1]
        min_loss = min(h[1] for h in history)
        assert min_loss < first_loss

    def test_competitive_with_uniform(self, gcn_pool, tiny_graph):
        """RQ1 sanity: LS should at least match US validation accuracy
        (it can *represent* the uniform soup and optimises val loss)."""
        ls = learned_soup(gcn_pool, tiny_graph, SoupConfig(epochs=40, lr=0.5, seed=1))
        us = uniform_soup(gcn_pool, tiny_graph)
        assert ls.val_acc >= us.val_acc - 0.05

    def test_seed_determinism(self, gcn_pool, tiny_graph):
        a = learned_soup(gcn_pool, tiny_graph, SoupConfig(**FAST, seed=3))
        b = learned_soup(gcn_pool, tiny_graph, SoupConfig(**FAST, seed=3))
        np.testing.assert_array_equal(a.extras["alphas"], b.extras["alphas"])
        assert a.test_acc == b.test_acc

    def test_different_seeds_vary(self, gcn_pool, tiny_graph):
        a = learned_soup(gcn_pool, tiny_graph, SoupConfig(**FAST, seed=1))
        b = learned_soup(gcn_pool, tiny_graph, SoupConfig(**FAST, seed=2))
        assert not np.array_equal(a.extras["alphas"], b.extras["alphas"])

    @pytest.mark.parametrize("granularity", ["model", "layer", "module", "tensor"])
    def test_granularities_all_work(self, gcn_pool, tiny_graph, granularity):
        result = learned_soup(gcn_pool, tiny_graph, SoupConfig(**FAST, granularity=granularity))
        assert 0.0 <= result.test_acc <= 1.0
        w = result.extras["weights"]
        assert w.shape == (len(gcn_pool), len(result.extras["group_names"]))

    def test_layer_granularity_group_count(self, gcn_pool, tiny_graph):
        result = learned_soup(gcn_pool, tiny_graph, SoupConfig(**FAST, granularity="layer"))
        # 2-layer GCN -> exactly 2 alpha groups, the paper's alpha_i^l
        assert result.extras["group_names"] == ["convs.0", "convs.1"]

    def test_select_best_false_uses_final(self, gcn_pool, tiny_graph):
        result = learned_soup(gcn_pool, tiny_graph, SoupConfig(**FAST, select_best=False))
        assert 0.0 <= result.test_acc <= 1.0

    def test_model_params_untouched_after_run(self, gcn_pool, tiny_graph):
        """Souping must not leak functional tensors into the pool's states."""
        before = [sd["convs.0.linear.weight"].copy() for sd in gcn_pool.states]
        learned_soup(gcn_pool, tiny_graph, SoupConfig(**FAST))
        for sd, prev in zip(gcn_pool.states, before):
            np.testing.assert_array_equal(sd["convs.0.linear.weight"], prev)

    def test_gat_pool_souping(self, gat_pool, tiny_graph):
        """LS through the attention architecture (segment softmax et al.)."""
        result = learned_soup(gat_pool, tiny_graph, SoupConfig(epochs=8, lr=0.5))
        assert np.isfinite(result.test_acc)
        assert result.extras["weights"].shape[0] == len(gat_pool)

    def test_no_cosine_variant(self, gcn_pool, tiny_graph):
        result = learned_soup(gcn_pool, tiny_graph, SoupConfig(**FAST, cosine=False))
        assert 0.0 <= result.test_acc <= 1.0

    def test_memory_higher_than_gis(self, gcn_pool, tiny_graph):
        """§V-C: LS shows the highest memory footprint (stacks + backward)."""
        from repro.soup import gis_soup

        ls = learned_soup(gcn_pool, tiny_graph, SoupConfig(**FAST))
        gis = gis_soup(gcn_pool, tiny_graph, granularity=8)
        assert ls.peak_memory > gis.peak_memory


class TestEarlyStopping:
    """§VI-A: 'Standard techniques to combat overfitting, such as early
    stopping, may prove valuable in refining learned souping methods.'"""

    def test_patience_cuts_epochs(self, gcn_pool, tiny_graph):
        cfg = SoupConfig(epochs=200, lr=0.5, early_stopping=3, seed=0)
        result = learned_soup(gcn_pool, tiny_graph, cfg)
        assert len(result.extras["history"]) < 200

    def test_zero_patience_disables(self, gcn_pool, tiny_graph):
        cfg = SoupConfig(epochs=10, lr=0.5, early_stopping=0, seed=0)
        result = learned_soup(gcn_pool, tiny_graph, cfg)
        assert len(result.extras["history"]) == 10

    def test_negative_patience_rejected(self):
        with pytest.raises(ValueError):
            SoupConfig(early_stopping=-1)

    def test_requires_select_best(self):
        with pytest.raises(ValueError):
            SoupConfig(early_stopping=5, select_best=False)

    def test_stopped_run_keeps_best_holdout_alphas(self, gcn_pool, tiny_graph):
        cfg = SoupConfig(epochs=200, lr=0.5, early_stopping=4, seed=1)
        result = learned_soup(gcn_pool, tiny_graph, cfg)
        history = result.extras["history"]
        best_epoch_acc = max(h[2] for h in history)
        # the returned soup corresponds to the best holdout epoch
        assert best_epoch_acc >= history[-1][2] - 1e-12
