"""Phase-1 substrate: list scheduler (Eq. 1/2) and ingredient production."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.distributed import (
    IngredientPool,
    WorkerPoolSimulator,
    eq1_estimate,
    eq2_min_time,
    train_ingredients,
)
from repro.train import TrainConfig


class TestScheduler:
    def test_single_worker_sequential(self):
        sched = WorkerPoolSimulator(1).schedule([1.0, 2.0, 3.0])
        assert sched.makespan == 6.0
        np.testing.assert_array_equal(sched.worker_of_task, [0, 0, 0])

    def test_n_leq_w_is_max(self):
        """Eq. 2: with enough workers the makespan is the slowest task."""
        durations = [3.0, 1.0, 2.0]
        sched = WorkerPoolSimulator(8).schedule(durations)
        assert sched.makespan == eq2_min_time(durations) == 3.0

    def test_eq1_approximation_uniform_tasks(self):
        """Eq. 1 is exact for uniform durations when W divides N."""
        n, w, t = 16, 4, 2.0
        sched = WorkerPoolSimulator(w).schedule([t] * n)
        assert sched.makespan == pytest.approx(eq1_estimate(n, w, t))

    def test_dynamic_queue_goes_to_earliest_free(self):
        # tasks: [4, 1, 1, 1] on 2 workers -> w0 takes 4; w1 takes 1,1,1
        sched = WorkerPoolSimulator(2).schedule([4.0, 1.0, 1.0, 1.0])
        assert sched.makespan == 4.0
        np.testing.assert_array_equal(sched.worker_of_task, [0, 1, 1, 1])

    def test_utilization_and_idle(self):
        sched = WorkerPoolSimulator(2).schedule([2.0, 2.0])
        assert sched.utilization == 1.0
        assert sched.idle_time == 0.0

    def test_busy_accounting(self):
        sched = WorkerPoolSimulator(3).schedule([1.0, 2.0, 3.0, 1.0])
        assert sched.worker_busy.sum() == pytest.approx(sched.total_work)

    def test_start_end_consistency(self):
        sched = WorkerPoolSimulator(2).schedule([1.0, 1.5, 0.5])
        np.testing.assert_allclose(sched.end_times - sched.start_times, sched.durations)

    def test_validation(self):
        with pytest.raises(ValueError):
            WorkerPoolSimulator(0)
        with pytest.raises(ValueError):
            WorkerPoolSimulator(2).schedule([])
        with pytest.raises(ValueError):
            WorkerPoolSimulator(2).schedule([-1.0])
        with pytest.raises(ValueError):
            eq1_estimate(0, 1, 1.0)
        with pytest.raises(ValueError):
            eq2_min_time([])

    def test_non_integral_num_workers_rejected(self):
        """A 2.5-worker cluster (or a bool) is a caller bug, not a layout."""
        for bad in (2.5, "4", True, np.float64(3.0)):
            with pytest.raises(ValueError):
                WorkerPoolSimulator(bad)
            with pytest.raises(ValueError):
                eq1_estimate(4, bad, 1.0)
        assert WorkerPoolSimulator(np.int64(3)).num_workers == 3

    def test_nan_and_inf_durations_rejected(self):
        """NaN previously flowed through the heap and produced a garbage
        schedule instead of an error."""
        for bad in ([1.0, np.nan], [np.inf, 1.0]):
            with pytest.raises(ValueError):
                WorkerPoolSimulator(2).schedule(bad)
            with pytest.raises(ValueError):
                eq2_min_time(bad)

    def test_non_1d_durations_rejected(self):
        with pytest.raises(ValueError):
            WorkerPoolSimulator(2).schedule(np.ones((2, 2)))
        with pytest.raises(ValueError):
            eq2_min_time(np.ones((2, 2)))

    def test_eq1_invalid_t_single_rejected(self):
        with pytest.raises(ValueError):
            eq1_estimate(4, 2, -1.0)
        with pytest.raises(ValueError):
            eq1_estimate(4, 2, float("nan"))

    @settings(max_examples=30, deadline=None)
    @given(
        n=st.integers(1, 30),
        w=st.integers(1, 10),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_property_makespan_bounds(self, n, w, seed):
        """Hypothesis: list-scheduling bounds — makespan is at least both
        max(d) and total/W, and at most total/W + max(d) (Graham)."""
        rng = np.random.default_rng(seed)
        durations = rng.random(n) + 0.01
        sched = WorkerPoolSimulator(w).schedule(durations)
        lower = max(durations.max(), durations.sum() / w)
        upper = durations.sum() / w + durations.max() + 1e-9
        assert lower - 1e-9 <= sched.makespan <= upper

    @settings(max_examples=20, deadline=None)
    @given(n=st.integers(2, 24), seed=st.integers(0, 2**31 - 1))
    def test_property_more_workers_never_slower(self, n, seed):
        rng = np.random.default_rng(seed)
        durations = rng.random(n) + 0.01
        m1 = WorkerPoolSimulator(2).schedule(durations).makespan
        m2 = WorkerPoolSimulator(4).schedule(durations).makespan
        assert m2 <= m1 + 1e-9


class TestIngredientPool:
    def test_pool_basic(self, gcn_pool):
        assert len(gcn_pool) == 4
        assert gcn_pool.graph_name == "tiny"
        assert len(gcn_pool.param_names()) > 0

    def test_order_by_val(self, gcn_pool):
        order = gcn_pool.order_by_val()
        accs = np.asarray(gcn_pool.val_accs)[order]
        assert np.all(np.diff(accs) <= 1e-12)
        assert gcn_pool.best_index == order[0]

    def test_stacked_params_shape(self, gcn_pool):
        stacks = gcn_pool.stacked_params()
        for name, stack in stacks.items():
            assert stack.shape[0] == 4
            assert stack.shape[1:] == gcn_pool.states[0][name].shape

    def test_make_model_loads_states(self, gcn_pool, tiny_graph):
        m = gcn_pool.make_model()
        m.load_state_dict(gcn_pool.states[0])  # shapes must line up

    def test_subset(self, gcn_pool):
        sub = gcn_pool.subset([0, 2])
        assert len(sub) == 2
        assert sub.val_accs == [gcn_pool.val_accs[0], gcn_pool.val_accs[2]]

    def test_state_nbytes_positive(self, gcn_pool):
        assert gcn_pool.state_nbytes() > 0

    def test_inconsistent_lists_rejected(self, gcn_pool):
        with pytest.raises(ValueError):
            IngredientPool(
                model_config=gcn_pool.model_config,
                states=gcn_pool.states,
                val_accs=[0.1],
                test_accs=gcn_pool.test_accs,
                train_times=gcn_pool.train_times,
            )


class TestTrainIngredients:
    def test_shared_initialization_diverges(self, tiny_graph):
        """All ingredients start identical (shared init) but end different."""
        pool = train_ingredients(
            "gcn", tiny_graph, n_ingredients=3,
            train_cfg=TrainConfig(epochs=8, lr=0.05), base_seed=1, hidden_dim=8,
        )
        names = pool.param_names()
        a, b = pool.states[0], pool.states[1]
        assert any(not np.array_equal(a[n], b[n]) for n in names)

    def test_determinism_across_runs(self, tiny_graph):
        kw = dict(
            train_cfg=TrainConfig(epochs=5, lr=0.05), base_seed=2, hidden_dim=8,
        )
        p1 = train_ingredients("gcn", tiny_graph, n_ingredients=2, **kw)
        p2 = train_ingredients("gcn", tiny_graph, n_ingredients=2, **kw)
        for s1, s2 in zip(p1.states, p2.states):
            for name in s1:
                np.testing.assert_array_equal(s1[name], s2[name])

    def test_thread_executor_matches_serial(self, tiny_graph):
        kw = dict(
            train_cfg=TrainConfig(epochs=4, lr=0.05), base_seed=3, hidden_dim=8,
        )
        serial = train_ingredients("gcn", tiny_graph, n_ingredients=3, executor="serial", **kw)
        threaded = train_ingredients("gcn", tiny_graph, n_ingredients=3, executor="thread", num_workers=3, **kw)
        for s1, s2 in zip(serial.states, threaded.states):
            for name in s1:
                np.testing.assert_array_equal(s1[name], s2[name])

    def test_epoch_jitter_varies_quality(self, tiny_graph):
        pool = train_ingredients(
            "gcn", tiny_graph, n_ingredients=4,
            train_cfg=TrainConfig(epochs=12, lr=0.05), base_seed=0, hidden_dim=8, epoch_jitter=8,
        )
        assert len(set(np.round(pool.val_accs, 6))) >= 2  # not all identical

    def test_schedule_attached(self, gcn_pool):
        assert gcn_pool.schedule is not None
        assert gcn_pool.schedule.makespan <= sum(gcn_pool.train_times) + 1e-9

    def test_invalid_args(self, tiny_graph):
        with pytest.raises(ValueError):
            train_ingredients("gcn", tiny_graph, n_ingredients=0)
        with pytest.raises(ValueError):
            train_ingredients("gcn", tiny_graph, n_ingredients=1, executor="mpi")
