"""Sampling: partition-union subgraphs (PLS semantics), k-hop, minibatches."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import (
    NeighborSampler,
    khop_subgraph,
    num_possible_subgraphs,
    partition_graph,
    partition_union_subgraph,
    select_partitions,
)
from repro.graph.csr import row_slice_index


@pytest.fixture(scope="module")
def partitioned(small_graph):
    result = partition_graph(small_graph, 8, method="metis", node_weights="val", seed=0)
    return small_graph, result


class TestSelectPartitions:
    def test_r_distinct_ids(self, rng):
        sel = select_partitions(10, 4, rng)
        assert len(sel) == 4 and len(np.unique(sel)) == 4
        assert sel.min() >= 0 and sel.max() < 10

    def test_sorted_output(self, rng):
        sel = select_partitions(10, 5, rng)
        assert np.all(np.diff(sel) > 0)

    def test_r_equals_k_selects_all(self, rng):
        np.testing.assert_array_equal(select_partitions(6, 6, rng), np.arange(6))

    def test_invalid_r(self, rng):
        with pytest.raises(ValueError):
            select_partitions(5, 0, rng)
        with pytest.raises(ValueError):
            select_partitions(5, 6, rng)

    def test_diversity_count(self):
        # §VI-B: (K, R) = (32, 8) gives > 10M possible subgraphs
        assert num_possible_subgraphs(32, 8) > 10_000_000
        assert num_possible_subgraphs(5, 1) == 5


class TestPartitionUnionSubgraph:
    def test_contains_exactly_selected_nodes(self, partitioned):
        graph, result = partitioned
        sub, nodes = partition_union_subgraph(graph, result.labels, np.array([0, 3]))
        expected = np.flatnonzero(np.isin(result.labels, [0, 3]))
        np.testing.assert_array_equal(nodes, expected)
        assert sub.num_nodes == len(expected)

    def test_preserves_cut_edges_between_selected(self, partitioned):
        """The paper's key subtlety: edges cut between two *selected*
        partitions reappear in the union subgraph."""
        graph, result = partitioned
        src, dst = graph.csr.edge_list()
        pair = None
        for a in range(result.k):
            for b in range(a + 1, result.k):
                crossing = (result.labels[src] == a) & (result.labels[dst] == b)
                if crossing.any():
                    pair = (a, b, int(crossing.sum()))
                    break
            if pair:
                break
        assert pair is not None, "partition should cut at least one edge somewhere"
        a, b, _ = pair
        sub, nodes = partition_union_subgraph(graph, result.labels, np.array([a, b]))
        sub_src, sub_dst = sub.csr.edge_list()
        global_src, global_dst = nodes[sub_src], nodes[sub_dst]
        cross_in_sub = (result.labels[global_src] == a) & (result.labels[global_dst] == b)
        assert cross_in_sub.sum() > 0

    def test_r1_has_no_cut_edges(self, partitioned):
        """R=1 corner: the subgraph is one partition; every cut edge is lost."""
        graph, result = partitioned
        sub, nodes = partition_union_subgraph(graph, result.labels, np.array([0]))
        sub_src, sub_dst = sub.csr.edge_list()
        assert np.all(result.labels[nodes[sub_src]] == 0)
        assert np.all(result.labels[nodes[sub_dst]] == 0)

    def test_all_partitions_is_whole_graph(self, partitioned):
        graph, result = partitioned
        sub, nodes = partition_union_subgraph(graph, result.labels, np.arange(result.k))
        assert sub.num_nodes == graph.num_nodes
        assert sub.num_edges == graph.num_edges

    def test_masks_carried_along(self, partitioned):
        graph, result = partitioned
        sub, nodes = partition_union_subgraph(graph, result.labels, np.array([1]))
        np.testing.assert_array_equal(sub.val_mask, graph.val_mask[nodes])
        np.testing.assert_array_equal(sub.labels, graph.labels[nodes])

    def test_bad_labels_shape(self, partitioned):
        graph, _ = partitioned
        with pytest.raises(ValueError):
            partition_union_subgraph(graph, np.zeros(3), np.array([0]))

    def test_empty_selection_raises(self, partitioned):
        graph, result = partitioned
        with pytest.raises(ValueError):
            partition_union_subgraph(graph, result.labels, np.array([99]))


class TestKhopSubgraph:
    def test_zero_hops_returns_seeds(self, small_graph, rng):
        seeds = np.array([5, 1, 5])
        out = khop_subgraph(small_graph.csr, seeds, hops=0, fanout=None)
        np.testing.assert_array_equal(out, [1, 5])

    def test_one_hop_includes_neighbours(self, small_graph):
        seed = 7
        out = khop_subgraph(small_graph.csr, np.array([seed]), hops=1, fanout=None)
        neighbours = small_graph.csr.row(seed)
        assert np.all(np.isin(neighbours, out))

    def test_hops_monotone(self, small_graph):
        seeds = np.array([0])
        one = khop_subgraph(small_graph.csr, seeds, hops=1, fanout=None)
        two = khop_subgraph(small_graph.csr, seeds, hops=2, fanout=None)
        assert np.all(np.isin(one, two))

    def test_fanout_caps_expansion(self, small_graph, rng):
        seeds = small_graph.train_idx[:8]
        capped = khop_subgraph(small_graph.csr, seeds, hops=2, fanout=2, rng=rng)
        full = khop_subgraph(small_graph.csr, seeds, hops=2, fanout=None)
        assert len(capped) <= len(full)

    def test_fanout_requires_rng(self, small_graph):
        with pytest.raises(ValueError):
            khop_subgraph(small_graph.csr, np.array([0]), hops=1, fanout=3, rng=None)

    def test_sampled_neighbours_are_real(self, small_graph, rng):
        seeds = np.array([3])
        out = khop_subgraph(small_graph.csr, seeds, hops=1, fanout=3, rng=rng)
        extras = np.setdiff1d(out, seeds)
        real = small_graph.csr.row(3)
        assert np.all(np.isin(extras, real))


class TestVectorizedEquality:
    """The repeat/cumsum fast paths must match their per-node reference loops."""

    def test_row_slice_index_matches_loop(self, small_graph, rng):
        indptr = small_graph.csr.indptr
        rows = np.sort(rng.choice(small_graph.num_nodes, size=60, replace=False))
        flat, degs = row_slice_index(indptr, rows)
        ref = np.concatenate(
            [np.arange(indptr[r], indptr[r + 1]) for r in rows] or [np.empty(0, dtype=np.int64)]
        )
        np.testing.assert_array_equal(flat, ref)
        np.testing.assert_array_equal(degs, indptr[rows + 1] - indptr[rows])

    def test_khop_full_expansion_matches_loop(self, small_graph):
        csr = small_graph.csr
        seeds = small_graph.train_idx[:16]
        fast = khop_subgraph(csr, seeds, hops=2, fanout=None)

        frontier = np.unique(seeds)
        visited = set(frontier.tolist())
        for _ in range(2):
            nxt = set()
            for node in frontier:
                nxt.update(csr.row(int(node)).tolist())
            frontier = np.array(sorted(nxt - visited), dtype=np.int64)
            visited |= nxt
        np.testing.assert_array_equal(fast, np.array(sorted(visited), dtype=np.int64))

    def test_induced_subgraph_matches_edge_scan(self, small_graph, rng):
        csr = small_graph.csr
        nodes = np.sort(rng.choice(small_graph.num_nodes, size=80, replace=False))
        sub, _ = csr.induced_subgraph(nodes)

        # O(E) reference: scan the full edge list and relabel
        new_of_old = {int(o): i for i, o in enumerate(nodes)}
        src, dst = csr.edge_list()
        ref_edges = sorted(
            (new_of_old[int(d)], new_of_old[int(s)])
            for s, d in zip(src, dst)
            if int(s) in new_of_old and int(d) in new_of_old
        )
        sub_src, sub_dst = sub.edge_list()
        got_edges = sorted(zip((int(d) for d in sub_dst), (int(s) for s in sub_src)))
        assert got_edges == ref_edges

    def test_empty_rows(self, small_graph):
        flat, degs = row_slice_index(small_graph.csr.indptr, np.empty(0, dtype=np.int64))
        assert flat.size == 0 and degs.size == 0


class TestNeighborSampler:
    def test_batches_cover_all_seeds(self, small_graph, rng):
        seeds = small_graph.train_idx
        sampler = NeighborSampler(small_graph, seeds, batch_size=32, hops=2, fanout=4, rng=rng)
        seen = []
        for sub, pos in sampler:
            seen.extend(sub.labels[pos].tolist())
        assert len(seen) == len(seeds)

    def test_len(self, small_graph, rng):
        sampler = NeighborSampler(small_graph, np.arange(100), batch_size=32, hops=1, fanout=4, rng=rng)
        assert len(sampler) == 4

    def test_positions_index_seed_labels(self, small_graph, rng):
        seeds = small_graph.train_idx[:16]
        sampler = NeighborSampler(small_graph, seeds, batch_size=16, hops=1, fanout=4, rng=rng, shuffle=False)
        sub, pos = next(iter(sampler))
        np.testing.assert_array_equal(np.sort(sub.labels[pos]), np.sort(small_graph.labels[seeds]))

    def test_invalid_batch_size(self, small_graph, rng):
        with pytest.raises(ValueError):
            NeighborSampler(small_graph, np.arange(10), batch_size=0, hops=1, fanout=2, rng=rng)
