"""Adaptive eval batching: framing only, never results.

The eval service may pack several contiguous tasks into one wire frame
(``eval_batch="adaptive"`` or a pinned int). The determinism contract is
that batch size is pure transport framing: for any chunk size, results
come back bit-identical and in the same request order as one-task-per-
frame dispatch, because timing only picks frame boundaries — it never
feeds an RNG, reorders tasks, or changes what a worker computes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.distributed.eval_service import (
    BATCH_TARGET_SECONDS,
    MAX_EVAL_BATCH,
    EvalService,
    EvalTask,
    _AdaptiveBatcher,
    mix_candidate,
    score_candidate,
    stack_flat_states,
)
from repro.soup import make_evaluator


class TestAdaptiveBatcher:
    def test_first_round_probes_with_size_one(self):
        assert _AdaptiveBatcher(4).chunk_size(100) == 1

    def test_small_batches_stay_unchunked(self):
        b = _AdaptiveBatcher(4)
        b.observe(8, 1.0)
        assert b.chunk_size(4) == 1  # n <= width: chunking only hurts

    def test_slow_tasks_keep_chunks_small(self):
        b = _AdaptiveBatcher(4)
        b.observe(4, 4.0)  # ~1s per task >> target
        assert b.chunk_size(100) == 1

    def test_fast_tasks_grow_chunks(self):
        b = _AdaptiveBatcher(4)
        b.observe(400, 0.1)  # ~1ms per task
        assert b.chunk_size(400) > 1

    def test_chunk_size_bounded(self):
        b = _AdaptiveBatcher(2)
        for _ in range(5):
            b.observe(10_000, 1e-6)  # absurdly fast
        size = b.chunk_size(10_000)
        assert 1 <= size <= MAX_EVAL_BATCH
        # and never starves workers: at most ceil(n / width) per chunk
        assert b.chunk_size(6) <= 3

    def test_observe_ignores_degenerate_samples(self):
        b = _AdaptiveBatcher(4)
        b.observe(0, 1.0)
        b.observe(10, 0.0)
        assert b.chunk_size(100) == 1  # still probing

    def test_target_is_sane(self):
        assert 0.0 < BATCH_TARGET_SECONDS < 1.0
        assert MAX_EVAL_BATCH >= 1


class TestEvalBatchValidation:
    @pytest.mark.parametrize("bad", [0, -3, True, False, 2.5, "fast", None])
    def test_rejects_bad_eval_batch(self, gcn_pool, tiny_graph, bad):
        flats, params = stack_flat_states(gcn_pool.states)
        with pytest.raises(ValueError, match="eval_batch"):
            EvalService(
                gcn_pool.model_config, tiny_graph, flats, params,
                num_workers=1, shm=False, eval_batch=bad,
            )

    def test_make_evaluator_threads_eval_batch(self, gcn_pool, tiny_graph):
        ev = make_evaluator(
            gcn_pool, tiny_graph, backend="process", num_workers=1, eval_batch=8
        )
        try:
            assert ev.eval_batch == 8
        finally:
            ev.close()


class TestBatchingDeterminism:
    @pytest.fixture(scope="class")
    def reference(self, gcn_pool, tiny_graph):
        """Serial scores for a spread of weight-vector candidates."""
        flats, params = stack_flat_states(gcn_pool.states)
        rng = np.random.default_rng(0)
        tasks = [
            EvalTask(
                req_id=i,
                weights=rng.dirichlet(np.ones(len(gcn_pool))),
                groups=None, state=None, split="val", indices=None, kind="acc",
            )
            for i in range(10)
        ]
        model = gcn_pool.make_model()
        scores = [
            score_candidate(
                model, tiny_graph,
                mix_candidate(flats, params, t.weights, None),
                t.split, t.indices, t.kind,
            )
            for t in tasks
        ]
        return flats, params, tasks, scores

    @pytest.mark.parametrize("eval_batch", [1, 3, 64, "adaptive"])
    def test_results_identical_across_chunk_sizes(
        self, gcn_pool, tiny_graph, reference, eval_batch
    ):
        flats, params, tasks, expected = reference
        svc = EvalService(
            gcn_pool.model_config, tiny_graph, flats, params,
            num_workers=2, shm=False, eval_batch=eval_batch,
        )
        try:
            first = svc.run(tasks)
            second = svc.run(tasks)  # adaptive: EMA seeded, chunks may differ
        finally:
            svc.close()
        assert first == expected  # bit-identical values, same order
        assert second == expected
        assert [type(x) for x in first] == [type(x) for x in expected]

    def test_chunk_size_never_reaches_worker_results(self, gcn_pool, tiny_graph, reference):
        """A batched task list and its flat replay produce the same scores
        even when the service is forced through the batch codec path."""
        flats, params, tasks, expected = reference
        svc = EvalService(
            gcn_pool.model_config, tiny_graph, flats, params,
            num_workers=1, shm=False, eval_batch=len(tasks),  # one frame, all tasks
        )
        try:
            assert svc.run(tasks) == expected
        finally:
            svc.close()
