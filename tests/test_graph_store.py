"""mmap graph store: round-trip fidelity, budget enforcement, training parity."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import GraphStore, MemoryBudgetError, parse_memory_budget
from repro.models import build_model
from repro.train import TrainConfig, train_model


@pytest.fixture()
def store(tiny_graph, tmp_path):
    return tiny_graph.to_store(tmp_path / "store")


class TestRoundTrip:
    def test_arrays_bit_identical(self, tiny_graph, store):
        g = store.graph()
        np.testing.assert_array_equal(g.csr.indptr, tiny_graph.csr.indptr)
        np.testing.assert_array_equal(g.csr.indices, tiny_graph.csr.indices)
        np.testing.assert_array_equal(np.asarray(g.features), tiny_graph.features)
        np.testing.assert_array_equal(g.labels, tiny_graph.labels)
        np.testing.assert_array_equal(g.train_mask, tiny_graph.train_mask)
        np.testing.assert_array_equal(g.val_mask, tiny_graph.val_mask)
        np.testing.assert_array_equal(g.test_mask, tiny_graph.test_mask)
        assert g.num_classes == tiny_graph.num_classes
        assert g.name == tiny_graph.name

    def test_row_slice_equality(self, tiny_graph, store):
        rng = np.random.default_rng(0)
        nodes = rng.choice(tiny_graph.num_nodes, size=37, replace=False)
        np.testing.assert_array_equal(store.gather_features(nodes), tiny_graph.features[nodes])

    def test_subgraph_equality(self, tiny_graph, store):
        g = store.graph()
        nodes = np.sort(np.random.default_rng(1).choice(tiny_graph.num_nodes, size=50, replace=False))
        a, b = tiny_graph.subgraph(nodes), g.subgraph(nodes)
        np.testing.assert_array_equal(a.csr.indptr, b.csr.indptr)
        np.testing.assert_array_equal(a.csr.indices, b.csr.indices)
        np.testing.assert_array_equal(a.features, b.features)
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_no_resident_feature_copy(self, store):
        g = store.graph()
        # the Graph constructor must pass the mmap view through un-copied
        assert np.asarray(g.features).base is not None
        assert not np.asarray(g.features).flags.owndata

    def test_chunked_writer_matches_array_writer(self, tiny_graph, tmp_path):
        chunks = [tiny_graph.features[i : i + 37] for i in range(0, tiny_graph.num_nodes, 37)]
        GraphStore.write(
            tmp_path / "chunked",
            csr=tiny_graph.csr,
            features=iter(chunks),
            labels=tiny_graph.labels,
            train_mask=tiny_graph.train_mask,
            val_mask=tiny_graph.val_mask,
            test_mask=tiny_graph.test_mask,
            num_classes=tiny_graph.num_classes,
            feature_dim=tiny_graph.feature_dim,
        )
        chunked = GraphStore(tmp_path / "chunked")
        np.testing.assert_array_equal(np.asarray(chunked.features), tiny_graph.features)

    def test_write_validates_row_count(self, tiny_graph, tmp_path):
        with pytest.raises(ValueError, match="feature rows"):
            GraphStore.write(
                tmp_path / "bad",
                csr=tiny_graph.csr,
                features=tiny_graph.features[:-1],
                labels=tiny_graph.labels,
                train_mask=tiny_graph.train_mask,
                val_mask=tiny_graph.val_mask,
                test_mask=tiny_graph.test_mask,
                num_classes=tiny_graph.num_classes,
            )

    def test_missing_store_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            GraphStore(tmp_path / "nope")

    def test_digest_is_cheap_and_stable(self, store, tiny_graph, tmp_path):
        other = tiny_graph.to_store(tmp_path / "again")
        assert store.digest() == other.digest()
        assert store.feature_digest == other.feature_digest


class TestBudget:
    def test_parse(self):
        assert parse_memory_budget(None) is None
        assert parse_memory_budget(1024) == 1024
        assert parse_memory_budget("64K") == 64 * 1024
        assert parse_memory_budget("2M") == 2 * 1024**2
        assert parse_memory_budget("2MB") == 2 * 1024**2
        assert parse_memory_budget("2MiB") == 2 * 1024**2
        assert parse_memory_budget("1.5G") == int(1.5 * 1024**3)
        with pytest.raises(ValueError):
            parse_memory_budget("lots")
        with pytest.raises(ValueError):
            parse_memory_budget(0)

    def test_env_budget(self, tiny_graph, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_MEMORY_BUDGET", "3M")
        store = GraphStore(tiny_graph.to_store(tmp_path / "env").path)
        assert store.memory_budget == 3 * 1024**2

    def test_oversized_gather_raises(self, tiny_graph, tmp_path):
        row_bytes = tiny_graph.feature_dim * 8
        store = tiny_graph.to_store(tmp_path / "b", memory_budget=row_bytes * 8)
        store.gather_features(np.arange(8))  # exactly at the budget: fine
        with pytest.raises(MemoryBudgetError, match="exceeds"):
            store.gather_features(np.arange(9))

    def test_full_graph_operator_raises(self, tiny_graph, tmp_path):
        g = tiny_graph.to_store(tmp_path / "b", memory_budget="1M").graph()
        with pytest.raises(MemoryBudgetError, match="minibatch"):
            g.operator("gcn")
        with pytest.raises(MemoryBudgetError, match="minibatch"):
            g.attention_structure()

    def test_unbudgeted_operator_works(self, tiny_graph, store):
        g = store.graph()
        assert g.operator("gcn") is g.operator("gcn")  # cached like the base class

    def test_full_batch_training_rejected(self, tiny_graph, tmp_path):
        g = tiny_graph.to_store(tmp_path / "b", memory_budget="1M").graph()
        model = build_model("sage", g.feature_dim, g.num_classes, hidden_dim=8, seed=0)
        with pytest.raises(ValueError, match="minibatch"):
            train_model(model, g, TrainConfig(epochs=1), seed=0)

    def test_release_accounting(self, tiny_graph, tmp_path):
        row_bytes = tiny_graph.feature_dim * 8
        store = tiny_graph.to_store(tmp_path / "b", memory_budget=row_bytes * 64)
        for _ in range(64):  # push well past the release threshold
            store.gather_features(np.arange(16))
        # accounting must reset instead of accumulating forever
        assert store._touched < store._release_threshold


class TestStoreTrainingParity:
    def _train(self, graph, seed=11):
        model = build_model("sage", graph.feature_dim, graph.num_classes, hidden_dim=16, seed=0)
        cfg = TrainConfig(
            epochs=3, minibatch=True, batch_size=32, fanout=4, prefetch_depth=2, sample_workers=2
        )
        return train_model(model, graph, cfg, seed=seed)

    def test_store_backed_matches_in_ram(self, tiny_graph, store):
        ref = self._train(tiny_graph)
        got = self._train(store.graph())
        for name in ref.state_dict:
            np.testing.assert_array_equal(ref.state_dict[name], got.state_dict[name], err_msg=name)
        assert (ref.val_acc, ref.test_acc) == (got.val_acc, got.test_acc)

    def test_budgeted_store_matches_in_ram_for_sage(self, tiny_graph, tmp_path):
        """With a budget, eval goes through blocked k-hop evaluation — exact
        for SAGE's destination-degree aggregation, so even the budgeted run
        reproduces the in-RAM result bit-for-bit."""
        g = tiny_graph.to_store(tmp_path / "b", memory_budget="256K").graph()
        ref = self._train(tiny_graph)
        got = self._train(g)
        for name in ref.state_dict:
            np.testing.assert_array_equal(ref.state_dict[name], got.state_dict[name], err_msg=name)
        assert (ref.val_acc, ref.test_acc) == (got.val_acc, got.test_acc)

    def test_budgeted_run_is_deterministic(self, tiny_graph, tmp_path):
        g = tiny_graph.to_store(tmp_path / "b", memory_budget="256K").graph()
        a, b = self._train(g), self._train(g)
        for name in a.state_dict:
            np.testing.assert_array_equal(a.state_dict[name], b.state_dict[name], err_msg=name)
