"""§VIII extensions: ingredient dropout, pruning, diversity souping, API."""

from __future__ import annotations

import numpy as np
import pytest

from repro.soup import (
    DropoutSoupConfig,
    diversity_weighted_soup,
    ingredient_dropout_soup,
    prune_soup_state,
    soup,
    soup_method_names,
)
from repro.soup.extensions import _prune_weights
from repro.soup.state import layer_groups


class TestPruneWeights:
    def test_zeroes_below_threshold(self):
        w = np.array([[0.6, 0.5], [0.39, 0.49], [0.01, 0.01]])
        pruned = _prune_weights(w, 0.05)
        assert pruned[2, 0] == 0.0 and pruned[2, 1] == 0.0

    def test_columns_renormalised(self):
        w = np.array([[0.9, 0.5], [0.08, 0.49], [0.02, 0.01]])
        pruned = _prune_weights(w, 0.05)
        np.testing.assert_allclose(pruned.sum(axis=0), np.ones(2))

    def test_degenerate_column_keeps_argmax(self):
        w = np.array([[0.4], [0.35], [0.25]])
        pruned = _prune_weights(w, 0.9)  # everything below threshold
        np.testing.assert_allclose(pruned[:, 0], [1.0, 0.0, 0.0])

    def test_circumvents_softmax_floor(self):
        """The §V-A pathology: softmax cannot emit exact zeros, pruning can."""
        w = np.array([[0.94], [0.05], [0.01]])
        pruned = _prune_weights(w, 0.02)
        assert (pruned == 0.0).sum() == 1


class TestIngredientDropoutSoup:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            DropoutSoupConfig(ingredient_dropout=1.0)
        with pytest.raises(ValueError):
            DropoutSoupConfig(prune_threshold=-0.1)

    def test_runs_and_returns_simplex_weights(self, gcn_pool, tiny_graph):
        cfg = DropoutSoupConfig(epochs=8, lr=0.5, ingredient_dropout=0.3, prune_threshold=0.02)
        result = ingredient_dropout_soup(gcn_pool, tiny_graph, cfg)
        assert result.method == "ls-dropout"
        w = result.extras["weights"]
        np.testing.assert_allclose(w.sum(axis=0), np.ones(w.shape[1]), atol=1e-9)

    def test_can_zero_out_ingredients(self, gcn_pool, tiny_graph):
        cfg = DropoutSoupConfig(epochs=8, lr=2.0, ingredient_dropout=0.3, prune_threshold=0.2)
        result = ingredient_dropout_soup(gcn_pool, tiny_graph, cfg)
        # with an aggressive threshold some mass must be exactly zero
        assert result.extras["zeroed_fraction"] >= 0.0  # recorded
        w = result.extras["weights"]
        assert np.isfinite(w).all()

    def test_deterministic(self, gcn_pool, tiny_graph):
        cfg = DropoutSoupConfig(epochs=6, lr=0.5, seed=4)
        a = ingredient_dropout_soup(gcn_pool, tiny_graph, cfg)
        b = ingredient_dropout_soup(gcn_pool, tiny_graph, cfg)
        np.testing.assert_array_equal(a.extras["weights"], b.extras["weights"])


class TestDiversitySoup:
    def test_weights_form_distribution(self, gcn_pool, tiny_graph):
        result = diversity_weighted_soup(gcn_pool, tiny_graph)
        w = result.extras["weights"]
        assert w.shape == (len(gcn_pool),)
        np.testing.assert_allclose(w.sum(), 1.0)
        assert np.all(w >= 0)

    def test_diversity_scores_normalised(self, gcn_pool, tiny_graph):
        result = diversity_weighted_soup(gcn_pool, tiny_graph)
        div = result.extras["diversity"]
        assert div.max() <= 1.0 + 1e-12 and div.min() >= 0.0

    def test_temperature_validation(self, gcn_pool, tiny_graph):
        with pytest.raises(ValueError):
            diversity_weighted_soup(gcn_pool, tiny_graph, temperature=0.0)

    def test_zero_coef_ranks_by_accuracy_only(self, gcn_pool, tiny_graph):
        result = diversity_weighted_soup(gcn_pool, tiny_graph, diversity_coef=0.0, temperature=0.01)
        w = result.extras["weights"]
        assert int(np.argmax(w)) == gcn_pool.best_index


class TestPruneSoupState:
    def test_matches_manual_combination(self, gcn_pool):
        names = gcn_pool.param_names()
        groups, _ = layer_groups(names, "layer")
        group_of = {n: int(g) for n, g in zip(names, groups)}
        n_groups = max(group_of.values()) + 1
        weights = np.full((len(gcn_pool), n_groups), 1.0 / len(gcn_pool))
        state = prune_soup_state(gcn_pool, weights, group_of, threshold=0.0)
        stacks = gcn_pool.stacked_params()
        for name in names:
            expected = stacks[name].mean(axis=0)
            np.testing.assert_allclose(state[name], expected)


class TestSoupAPI:
    def test_method_names_cover_paper(self):
        assert set(soup_method_names(paper_only=True)) == {"us", "gis", "ls", "pls"}

    def test_all_methods_registered(self):
        names = soup_method_names()
        for required in ("us", "greedy", "gis", "ls", "pls", "ensemble-logit"):
            assert required in names

    def test_dispatch(self, gcn_pool, tiny_graph):
        result = soup("us", gcn_pool, tiny_graph)
        assert result.method == "us"

    def test_dispatch_with_kwargs(self, gcn_pool, tiny_graph):
        result = soup("gis", gcn_pool, tiny_graph, granularity=5)
        assert result.extras["granularity"] == 5

    def test_unknown_method(self, gcn_pool, tiny_graph):
        with pytest.raises(KeyError):
            soup("blender", gcn_pool, tiny_graph)
