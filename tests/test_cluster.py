"""Unified cluster runtime: tcp transport, cross-transport determinism.

The acceptance contract under test: the Phase-1 pool and Phase-2 soups
are bit-identical whether the workers sit behind the same-host ``pipe``
transport or the multi-host ``tcp`` transport (loopback workers here) —
and both phases run on the *same* shared worker-service core
(:mod:`repro.distributed.cluster`), with worker-death/lost-task recovery
over sockets.
"""

from __future__ import annotations

import multiprocessing as mp
import time
from pathlib import Path

import numpy as np
import pytest

from repro.distributed import (
    ClusterService,
    FaultPlan,
    TcpTransport,
    parse_nodes,
    train_ingredients,
)
from repro.distributed.cluster import run_worker
from repro.soup import gis_soup, greedy_soup, make_evaluator
from repro.train import TrainConfig

KW = dict(train_cfg=TrainConfig(epochs=4, lr=0.05), base_seed=3, hidden_dim=8)


def assert_pools_identical(a, b):
    assert len(a) == len(b)
    for s1, s2 in zip(a.states, b.states):
        for name in s1:
            np.testing.assert_array_equal(s1[name], s2[name])
    assert a.val_accs == b.val_accs
    assert a.test_accs == b.test_accs


def assert_results_identical(a, b):
    for name in a.state_dict:
        np.testing.assert_array_equal(a.state_dict[name], b.state_dict[name])
    assert a.val_acc == b.val_acc
    assert a.test_acc == b.test_acc


@pytest.fixture(scope="module")
def serial_pool(tiny_graph):
    return train_ingredients("gcn", tiny_graph, 3, executor="serial", **KW)


def start_workers(tmp_path: Path, n: int):
    """Spawn ``n`` real ``cluster start-worker`` servers on loopback;
    returns ``(processes, ["127.0.0.1:port", ...])``."""
    ctx = mp.get_context("fork" if "fork" in mp.get_all_start_methods() else "spawn")
    procs, nodes = [], []
    for i in range(n):
        port_file = tmp_path / f"worker-{i}.port"
        proc = ctx.Process(
            target=run_worker,
            kwargs=dict(host="127.0.0.1", port=0, verbose=False, port_file=port_file),
            daemon=True,
        )
        proc.start()
        procs.append((proc, port_file))
    for proc, port_file in procs:
        deadline = time.monotonic() + 30
        while not port_file.exists():
            assert proc.is_alive(), "cluster worker died before binding"
            assert time.monotonic() < deadline, "cluster worker never bound its port"
            time.sleep(0.05)
        nodes.append("127.0.0.1:" + port_file.read_text().split()[1])
    return [proc for proc, _ in procs], nodes


class TestPhase1TcpDeterminism:
    """train_ingredients over tcp loopback: bit-identical to serial."""

    @pytest.mark.parametrize("shm", [True, False], ids=["shm", "noshm"])
    def test_tcp_loopback_bit_identical(self, tiny_graph, serial_pool, shm):
        pool = train_ingredients(
            "gcn", tiny_graph, 3, executor="process", transport="tcp",
            num_workers=2, shm=shm, **KW,
        )
        assert_pools_identical(serial_pool, pool)

    def test_hard_killed_tcp_worker_is_retried(self, tiny_graph, serial_pool):
        """A kill fault fail-stops the worker process mid-task; over tcp
        the death surfaces as connection loss, the claimed task re-enters
        the queue and a replacement loopback worker spawns."""
        pool = train_ingredients(
            "gcn", tiny_graph, 3, executor="process", transport="tcp",
            num_workers=2, fault_plan=FaultPlan(failures={0: 1}, kill=True), **KW,
        )
        assert_pools_identical(serial_pool, pool)

    def test_start_worker_nodes_bit_identical(self, tiny_graph, serial_pool, tmp_path):
        """The real multi-node path: two `cluster start-worker` servers on
        loopback, addressed through nodes=..., train the same pool."""
        procs, nodes = start_workers(tmp_path, 2)
        try:
            pool = train_ingredients(
                "gcn", tiny_graph, 3, executor="process", transport="tcp",
                nodes=",".join(nodes), **KW,
            )
            assert_pools_identical(serial_pool, pool)
        finally:
            for proc in procs:
                proc.terminate()


class TestPhase2TcpDeterminism:
    """Souping through the process evaluator over tcp: bit-identical."""

    def test_soup_methods_tcp_loopback(self, gcn_pool, tiny_graph):
        ref_gis = gis_soup(gcn_pool, tiny_graph, granularity=5)
        ref_greedy = greedy_soup(gcn_pool, tiny_graph)
        with make_evaluator(
            gcn_pool, tiny_graph, backend="process", num_workers=2, transport="tcp"
        ) as ev:
            assert_results_identical(ref_gis, gis_soup(gcn_pool, tiny_graph, granularity=5, evaluator=ev))
            assert_results_identical(ref_greedy, greedy_soup(gcn_pool, tiny_graph, evaluator=ev))

    def test_same_workers_serve_both_phases(self, tiny_graph, serial_pool, tmp_path):
        """A start-worker is phase-agnostic: the role ships at handshake,
        so the same long-lived servers train a pool and then score soups."""
        procs, nodes = start_workers(tmp_path, 2)
        try:
            pool = train_ingredients(
                "gcn", tiny_graph, 3, executor="process", transport="tcp",
                nodes=nodes, **KW,
            )
            assert_pools_identical(serial_pool, pool)
            ref = greedy_soup(pool, tiny_graph)
            with make_evaluator(
                pool, tiny_graph, backend="process", transport="tcp", nodes=nodes
            ) as ev:
                assert_results_identical(ref, greedy_soup(pool, tiny_graph, evaluator=ev))
        finally:
            for proc in procs:
                proc.terminate()

    def test_node_death_lost_task_recovery(self, gcn_pool, tiny_graph, tmp_path):
        """Killing a remote node mid-service loses a worker the driver
        cannot respawn: its tasks must be recovered onto the survivor and
        every batch still complete with bit-identical scores."""
        procs, nodes = start_workers(tmp_path, 2)
        serial_scores = None
        try:
            with make_evaluator(gcn_pool, tiny_graph) as serial_ev:
                serial_scores = serial_ev.final_scores(
                    weights=np.full(len(gcn_pool), 1.0 / len(gcn_pool))
                )
            # cache off: every evaluation must actually cross the wire
            with make_evaluator(
                gcn_pool, tiny_graph, backend="process", transport="tcp",
                nodes=nodes, cache_size=0,
            ) as ev:
                before = ev.final_scores(weights=np.full(len(gcn_pool), 1.0 / len(gcn_pool)))
                assert before == serial_scores
                procs[0].terminate()
                procs[0].join()
                after = ev.final_scores(weights=np.full(len(gcn_pool), 1.0 / len(gcn_pool)))
                assert after == serial_scores
                # a whole greedy run on the surviving worker still matches
                ref = greedy_soup(gcn_pool, tiny_graph)
                assert_results_identical(ref, greedy_soup(gcn_pool, tiny_graph, evaluator=ev))
        finally:
            for proc in procs:
                proc.terminate()


class TestFallbackPayloadPush:
    def test_unreachable_shm_falls_back_to_serialized_payload(self, gcn_pool, tiny_graph):
        """A worker that cannot attach the driver's shm segment (the
        cross-node case, simulated with a bogus segment name) reports
        init-error and receives the serialized graph/pool payload once."""
        from repro.distributed.eval_service import EvalTask, stack_flat_states
        from repro.distributed.ingredients import _graph_to_payload
        from repro.distributed.shm import SharedGraphSpec

        flats, params = stack_flat_states(gcn_pool.states)
        bogus_ref = {
            "kind": "shm",
            "spec": SharedGraphSpec(
                shm_name="repro-no-such-segment", fields=(),
                num_nodes=0, num_classes=1, graph_name="bogus",
            ),
        }
        arrays_pool = {"kind": "arrays", "flats": flats, "params": params}
        context = {
            "graph_ref": bogus_ref,
            "pool_ref": arrays_pool,
            "model_config": dict(gcn_pool.model_config),
        }
        fallback = {
            "graph_ref": {"kind": "arrays", "payload": _graph_to_payload(tiny_graph)},
            "pool_ref": arrays_pool,
            "model_config": dict(gcn_pool.model_config),
        }
        uniform = np.full(len(gcn_pool), 1.0 / len(gcn_pool))
        service = ClusterService(
            TcpTransport("eval", context, fallback_context=fallback, spawn_local=1)
        )
        try:
            results, exhausted = service.run(
                [0], lambda key, attempt: EvalTask(weights=uniform)
            )
        finally:
            service.close()
        assert exhausted == []
        with make_evaluator(gcn_pool, tiny_graph) as serial_ev:
            assert results[0] == serial_ev.accuracy_of(weights=uniform)


class TestValidationAndStructure:
    def test_unknown_transport_rejected(self, tiny_graph):
        with pytest.raises(ValueError, match="transport"):
            train_ingredients("gcn", tiny_graph, 1, transport="carrier-pigeon", **KW)

    def test_nodes_require_tcp(self, tiny_graph):
        with pytest.raises(ValueError, match="tcp"):
            train_ingredients(
                "gcn", tiny_graph, 1, executor="process",
                transport="pipe", nodes="h:1", **KW,
            )

    def test_tcp_requires_process_executor(self, tiny_graph):
        with pytest.raises(ValueError, match="process"):
            train_ingredients("gcn", tiny_graph, 1, executor="thread", transport="tcp", **KW)

    def test_tcp_requires_dynamic_queue(self, tiny_graph):
        with pytest.raises(ValueError, match="dynamic"):
            train_ingredients(
                "gcn", tiny_graph, 1, executor="process",
                transport="tcp", queue="rounds", **KW,
            )

    def test_evaluator_nodes_require_process_backend(self, gcn_pool, tiny_graph):
        """--soup-nodes with a non-process backend must error, never
        silently score locally while the user believes nodes are working."""
        for backend in ("serial", "thread"):
            with pytest.raises(ValueError, match="process"):
                make_evaluator(gcn_pool, tiny_graph, backend=backend, nodes="h:1")
            with pytest.raises(ValueError, match="process"):
                make_evaluator(gcn_pool, tiny_graph, backend=backend, transport="tcp")

    def test_parse_nodes(self):
        assert parse_nodes(None) is None
        assert parse_nodes("") is None
        assert parse_nodes("h1:9301, h2:9302") == [("h1", 9301), ("h2", 9302)]
        assert parse_nodes([("h1", 9301), "h2:9302"]) == [("h1", 9301), ("h2", 9302)]
        with pytest.raises(ValueError, match="host:port"):
            parse_nodes("no-port")

    def test_both_phases_share_the_cluster_core(self):
        """The acceptance criterion: neither module owns a private copy of
        the claim/done protocol anymore — both resolve to the shared
        cluster service and register roles on it."""
        from repro.distributed import cluster, eval_service, ingredients

        assert not hasattr(ingredients, "_pool_worker_main")
        assert not hasattr(eval_service, "_eval_worker_main")
        assert ingredients.ClusterService is cluster.ClusterService
        assert eval_service.ClusterService is cluster.ClusterService
        assert cluster.resolve_role("ingredients") is ingredients.INGREDIENT_ROLE
        assert cluster.resolve_role("eval") is eval_service.EVAL_ROLE
