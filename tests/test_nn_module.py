"""Module system: registration, state dicts, functional injection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import Linear, Module, ModuleList, Parameter, functional_params
from repro.tensor import Tensor


class TwoLayer(Module):
    def __init__(self, rng):
        super().__init__()
        self.fc1 = Linear(4, 8, rng)
        self.fc2 = Linear(8, 2, rng)
        self.scale = Parameter(np.ones(1))

    def forward(self, x):
        return self.fc2(self.fc1(x).relu()) * self.scale


class TestRegistration:
    def test_parameter_registered(self, rng):
        m = TwoLayer(rng)
        names = [n for n, _ in m.named_parameters()]
        assert "scale" in names and "fc1.weight" in names and "fc2.bias" in names

    def test_registration_order_stable(self, rng):
        names = [n for n, _ in TwoLayer(rng).named_parameters()]
        assert names == ["scale", "fc1.weight", "fc1.bias", "fc2.weight", "fc2.bias"]

    def test_num_parameters(self, rng):
        m = TwoLayer(rng)
        assert m.num_parameters() == 1 + 4 * 8 + 8 + 8 * 2 + 2

    def test_parameter_nbytes(self, rng):
        m = TwoLayer(rng)
        assert m.parameter_nbytes() == m.num_parameters() * 8

    def test_named_modules(self, rng):
        names = [n for n, _ in TwoLayer(rng).named_modules()]
        assert "" in names and "fc1" in names and "fc2" in names

    def test_missing_attribute_raises(self, rng):
        with pytest.raises(AttributeError):
            TwoLayer(rng).nonexistent

    def test_assignment_before_init_raises(self):
        class Bad(Module):
            def __init__(self):
                self.weight = Parameter(np.ones(2))  # no super().__init__()

        with pytest.raises(RuntimeError):
            Bad()


class TestStateDict:
    def test_roundtrip(self, rng):
        m = TwoLayer(rng)
        sd = m.state_dict()
        m2 = TwoLayer(np.random.default_rng(99))
        m2.load_state_dict(sd)
        for (_, a), (_, b) in zip(m.named_parameters(), m2.named_parameters()):
            np.testing.assert_array_equal(a.data, b.data)

    def test_state_dict_is_copy(self, rng):
        m = TwoLayer(rng)
        sd = m.state_dict()
        sd["scale"][0] = 42.0
        assert m.scale.data[0] == 1.0

    def test_load_missing_key_raises(self, rng):
        m = TwoLayer(rng)
        sd = m.state_dict()
        del sd["scale"]
        with pytest.raises(KeyError):
            m.load_state_dict(sd)

    def test_load_unexpected_key_raises(self, rng):
        m = TwoLayer(rng)
        sd = m.state_dict()
        sd["ghost"] = np.ones(1)
        with pytest.raises(KeyError):
            m.load_state_dict(sd)

    def test_load_shape_mismatch_raises(self, rng):
        m = TwoLayer(rng)
        sd = m.state_dict()
        sd["scale"] = np.ones(3)
        with pytest.raises(ValueError):
            m.load_state_dict(sd)

    def test_load_copies_values(self, rng):
        m = TwoLayer(rng)
        sd = m.state_dict()
        m.load_state_dict(sd)
        sd["scale"][0] = -1.0
        assert m.scale.data[0] == 1.0


class TestFunctionalInjection:
    """The mechanism Learned Souping uses to differentiate through weights."""

    def test_injection_changes_forward(self, rng):
        m = TwoLayer(rng)
        x = Tensor(rng.normal(size=(3, 4)))
        base = m(x).data.copy()
        with functional_params(m, {"scale": Tensor(np.array([2.0]))}):
            doubled = m(x).data
        np.testing.assert_allclose(doubled, 2.0 * base)

    def test_injection_restores_on_exit(self, rng):
        m = TwoLayer(rng)
        original = m.scale
        with functional_params(m, {"scale": Tensor(np.array([5.0]))}):
            pass
        assert m.scale is original

    def test_injection_restores_on_exception(self, rng):
        m = TwoLayer(rng)
        original = m.fc1.weight
        with pytest.raises(RuntimeError):
            with functional_params(m, {"fc1.weight": Tensor(np.zeros((4, 8)))}):
                raise RuntimeError("boom")
        assert m.fc1.weight is original

    def test_gradient_flows_to_injected_tensor(self, rng):
        m = TwoLayer(rng)
        alpha = Tensor(np.array([1.5]), requires_grad=True)
        x = Tensor(rng.normal(size=(3, 4)))
        with functional_params(m, {"scale": alpha * 2.0}):
            loss = m(x).sum()
        loss.backward()
        assert alpha.grad is not None and np.isfinite(alpha.grad).all()

    def test_unknown_name_raises(self, rng):
        with pytest.raises(KeyError):
            TwoLayer(rng).inject_params({"nope": Tensor(np.ones(1))})

    def test_nested_path_injection(self, rng):
        m = TwoLayer(rng)
        new_w = Tensor(np.zeros((4, 8)))
        with functional_params(m, {"fc1.weight": new_w}):
            assert m.fc1.weight is new_w


class TestTrainEvalMode:
    def test_default_training(self, rng):
        assert TwoLayer(rng).training

    def test_eval_propagates(self, rng):
        m = TwoLayer(rng)
        m.eval()
        assert not m.training and not m.fc1.training

    def test_train_restores(self, rng):
        m = TwoLayer(rng)
        m.eval().train()
        assert m.training and m.fc2.training

    def test_zero_grad_clears(self, rng):
        m = TwoLayer(rng)
        x = Tensor(rng.normal(size=(2, 4)))
        m(x).sum().backward()
        assert m.fc1.weight.grad is not None
        m.zero_grad()
        assert m.fc1.weight.grad is None


class TestModuleList:
    def test_iteration_order(self, rng):
        ml = ModuleList([Linear(2, 2, rng) for _ in range(3)])
        assert len(ml) == 3
        assert len(list(ml)) == 3

    def test_indexing(self, rng):
        layers = [Linear(2, 2, rng) for _ in range(3)]
        ml = ModuleList(layers)
        assert ml[0] is layers[0] and ml[-1] is layers[2]

    def test_append(self, rng):
        ml = ModuleList()
        ml.append(Linear(2, 2, rng))
        assert len(ml) == 1

    def test_parameters_visible_through_list(self, rng):
        ml = ModuleList([Linear(2, 3, rng)])
        names = [n for n, _ in ml.named_parameters()]
        assert names == ["0.weight", "0.bias"]

    def test_repr_contains_children(self, rng):
        text = repr(ModuleList([Linear(2, 2, rng)]))
        assert "Linear" in text
