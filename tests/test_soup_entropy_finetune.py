"""§VIII extensions: entropy-regularised alphas and soup fine-tuning."""

from __future__ import annotations

import numpy as np
import pytest

from repro.soup import PLSConfig, SoupConfig, finetuned_soup, learned_soup, partition_learned_soup, soup
from repro.soup.learned import entropy_penalty
from repro.tensor import Tensor


class TestEntropyPenalty:
    def test_uniform_mixture_has_maximal_entropy(self):
        uniform = Tensor(np.full((4, 2), 0.25))
        peaked = Tensor(np.array([[0.97], [0.01], [0.01], [0.01]]) * np.ones((1, 2)))
        assert float(entropy_penalty(uniform).data) > float(entropy_penalty(peaked).data)

    def test_uniform_entropy_closed_form(self):
        n = 5
        w = Tensor(np.full((n, 3), 1.0 / n))
        # mean per-group entropy of uniform over n = ln(n)
        assert float(entropy_penalty(w).data) == pytest.approx(3 * np.log(n) / 3, rel=1e-9)

    def test_safe_at_exact_zeros(self):
        w = Tensor(np.array([[1.0], [0.0], [0.0]]))
        assert float(entropy_penalty(w).data) == pytest.approx(0.0, abs=1e-9)

    def test_gradient_pushes_toward_concentration(self):
        """Descending the entropy from a near-uniform softmax mixture must
        reduce entropy (concentrate mass)."""
        alphas = Tensor(np.array([[0.1], [0.0], [-0.1]]), requires_grad=True)
        before = float(entropy_penalty(alphas.softmax(axis=0)).data)
        for _ in range(50):
            alphas.zero_grad()
            pen = entropy_penalty(alphas.softmax(axis=0))
            pen.backward()
            alphas.data -= 0.5 * alphas.grad
        after = float(entropy_penalty(alphas.softmax(axis=0)).data)
        assert after < before


class TestEntropyRegularisedLS:
    def test_config_validation(self):
        with pytest.raises(ValueError, match="entropy"):
            SoupConfig(alpha_entropy_coef=-0.1)
        with pytest.raises(ValueError, match="simplex"):
            SoupConfig(alpha_entropy_coef=0.1, normalize="none")

    def test_regularised_weights_are_more_concentrated(self, gcn_pool, tiny_graph):
        common = dict(epochs=25, lr=1.0, seed=0, holdout_fraction=0.0, select_best=False)
        plain = learned_soup(gcn_pool, tiny_graph, SoupConfig(**common))
        reg = learned_soup(gcn_pool, tiny_graph, SoupConfig(alpha_entropy_coef=0.5, **common))

        def mean_entropy(w):
            w = np.clip(w, 1e-12, None)
            return float(-(w * np.log(w)).sum(axis=0).mean())

        assert mean_entropy(reg.extras["weights"]) < mean_entropy(plain.extras["weights"])
        assert 0.0 <= reg.test_acc <= 1.0

    def test_zero_coef_is_exactly_vanilla(self, gcn_pool, tiny_graph):
        a = learned_soup(gcn_pool, tiny_graph, SoupConfig(epochs=6, seed=3))
        b = learned_soup(gcn_pool, tiny_graph, SoupConfig(epochs=6, seed=3, alpha_entropy_coef=0.0))
        np.testing.assert_array_equal(a.extras["alphas"], b.extras["alphas"])

    def test_pls_honours_entropy_coef(self, small_pool, small_graph):
        base = dict(epochs=8, seed=2, num_partitions=8, partition_budget=4, holdout_fraction=0.0)
        plain = partition_learned_soup(small_pool, small_graph, PLSConfig(**base))
        reg = partition_learned_soup(
            small_pool, small_graph, PLSConfig(alpha_entropy_coef=1.0, **base)
        )
        assert not np.array_equal(plain.extras["alphas"], reg.extras["alphas"])


class TestFinetunedSoup:
    def test_runs_and_reports_both_scores(self, gcn_pool, tiny_graph):
        result = finetuned_soup(
            gcn_pool, tiny_graph, SoupConfig(epochs=8, seed=0), finetune_epochs=5
        )
        assert result.method == "ls-finetune"
        assert 0.0 <= result.extras["ls_test_acc"] <= 1.0
        assert 0.0 <= result.test_acc <= 1.0

    def test_zero_epochs_is_plain_ls(self, gcn_pool, tiny_graph):
        cfg = SoupConfig(epochs=8, seed=0)
        ft = finetuned_soup(gcn_pool, tiny_graph, cfg, finetune_epochs=0)
        ls = learned_soup(gcn_pool, tiny_graph, cfg)
        for name in ft.state_dict:
            np.testing.assert_array_equal(ft.state_dict[name], ls.state_dict[name])

    def test_finetuning_moves_weights(self, gcn_pool, tiny_graph):
        cfg = SoupConfig(epochs=8, seed=0)
        ft = finetuned_soup(gcn_pool, tiny_graph, cfg, finetune_epochs=5)
        ls = learned_soup(gcn_pool, tiny_graph, cfg)
        moved = any(
            not np.array_equal(ft.state_dict[name], ls.state_dict[name]) for name in ft.state_dict
        )
        assert moved

    def test_finetuning_does_not_collapse(self, gcn_pool, tiny_graph):
        """A few gentle epochs from the soup must stay in the working band
        (train_model restores its best-val epoch, so this is near-monotone)."""
        result = finetuned_soup(
            gcn_pool, tiny_graph, SoupConfig(epochs=8, seed=0), finetune_epochs=5
        )
        assert result.test_acc >= result.extras["ls_test_acc"] - 0.08

    def test_negative_epochs_rejected(self, gcn_pool, tiny_graph):
        with pytest.raises(ValueError, match="finetune_epochs"):
            finetuned_soup(gcn_pool, tiny_graph, finetune_epochs=-1)

    def test_registered_in_method_registry(self, gcn_pool, tiny_graph):
        result = soup(
            "ls-finetune", gcn_pool, tiny_graph, cfg=SoupConfig(epochs=4, seed=0), finetune_epochs=2
        )
        assert result.method == "ls-finetune"
