"""Evaluator-side candidate-score cache + worker-count validation.

Satellites of the cluster-runtime PR: identical mixes must stop costing
forward passes (greedy re-speculation, GIS's ``alpha = 0`` endpoint,
repeats across an evaluator's lifetime), with hit/miss counters exposed —
and every entry point accepting a worker count must reject booleans and
non-integers with the scheduler's strict rule.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.soup import (
    Candidate,
    ProcessEvaluator,
    ThreadEvaluator,
    greedy_soup,
    gis_soup,
    make_evaluator,
    member_weights,
    uniform_weights,
)


class TestScoreCache:
    def test_gis_hits_within_a_single_run(self, gcn_pool, tiny_graph):
        """GIS re-scores the current soup at every ingredient's alpha=0
        grid endpoint — those must come from the cache."""
        with make_evaluator(gcn_pool, tiny_graph) as ev:
            gis_soup(gcn_pool, tiny_graph, granularity=5, evaluator=ev)
            info = ev.cache_info()
        assert info["hits"] > 0
        assert info["misses"] > 0
        assert info["size"] <= info["capacity"]

    def test_greedy_evaluation_count_drops(self, gcn_pool, tiny_graph):
        """The satellite's acceptance: re-running greedy on the same
        evaluator re-scores nothing — every mix is already cached."""
        with make_evaluator(gcn_pool, tiny_graph) as ev:
            first = greedy_soup(gcn_pool, tiny_graph, evaluator=ev)
            evals_after_first = ev.backend_evals
            assert evals_after_first > 0
            second = greedy_soup(gcn_pool, tiny_graph, evaluator=ev)
            assert ev.backend_evals == evals_after_first  # count dropped to zero
            assert ev.cache_info()["hits"] >= evals_after_first
        assert first.val_acc == second.val_acc
        for name in first.state_dict:
            np.testing.assert_array_equal(first.state_dict[name], second.state_dict[name])

    def test_disabled_cache_rescores_everything(self, gcn_pool, tiny_graph):
        with make_evaluator(gcn_pool, tiny_graph, cache_size=0) as ev:
            greedy_soup(gcn_pool, tiny_graph, evaluator=ev)
            evals_after_first = ev.backend_evals
            greedy_soup(gcn_pool, tiny_graph, evaluator=ev)
            assert ev.backend_evals == 2 * evals_after_first
            assert ev.cache_info() == {"hits": 0, "misses": 0, "size": 0, "capacity": 0}

    def test_cached_results_bit_identical(self, gcn_pool, tiny_graph):
        with make_evaluator(gcn_pool, tiny_graph, cache_size=0) as cold:
            ref = greedy_soup(gcn_pool, tiny_graph, evaluator=cold)
        with make_evaluator(gcn_pool, tiny_graph) as warm:
            greedy_soup(gcn_pool, tiny_graph, evaluator=warm)  # populate
            hot = greedy_soup(gcn_pool, tiny_graph, evaluator=warm)  # all hits
        assert ref.val_acc == hot.val_acc and ref.test_acc == hot.test_acc
        for name in ref.state_dict:
            np.testing.assert_array_equal(ref.state_dict[name], hot.state_dict[name])

    def test_rotation_views_share_one_cache(self, gcn_pool, tiny_graph):
        """Subset views zero-expand onto the base pool, so the same
        sub-pool mix scored through two rotations hits one shared cache."""
        with make_evaluator(gcn_pool, tiny_graph) as ev:
            view_a = ev.subset([0, 1, 2])
            view_b = ev.subset([0, 1, 2])
            view_a.accuracy_of(weights=member_weights(3, [0, 1]))
            hits_before = ev.cache_info()["hits"]
            view_b.accuracy_of(weights=member_weights(3, [0, 1]))
            assert ev.cache_info()["hits"] == hits_before + 1
            assert view_b.cache_info() == ev.cache_info()

    def test_split_and_indices_distinguish_entries(self, gcn_pool, tiny_graph):
        weights = uniform_weights(len(gcn_pool))
        with make_evaluator(gcn_pool, tiny_graph) as ev:
            val = ev.accuracy_of(weights=weights, split="val")
            test = ev.accuracy_of(weights=weights, split="test")
            sliced = ev.accuracy_of(weights=weights, indices=tiny_graph.val_idx[:5])
            assert ev.cache_info()["misses"] == 3  # three distinct selections
            assert ev.accuracy_of(weights=weights, split="val") == val
            assert ev.accuracy_of(weights=weights, split="test") == test
            assert ev.accuracy_of(weights=weights, indices=tiny_graph.val_idx[:5]) == sliced
            assert ev.cache_info()["hits"] == 3

    def test_logits_and_states_bypass_the_cache(self, gcn_pool, tiny_graph):
        weights = uniform_weights(len(gcn_pool))
        with make_evaluator(gcn_pool, tiny_graph) as ev:
            state = ev.mix(weights)
            for _ in range(2):
                ev.evaluate([Candidate(weights=weights, split=None, kind="logits")])
                ev.evaluate([Candidate(state=state, split="val")])
            info = ev.cache_info()
            assert info["hits"] == 0 and info["misses"] == 0
            assert ev.backend_evals == 4

    def test_duplicates_within_one_batch_scored_once(self, gcn_pool, tiny_graph):
        """Two identical mix specs in the same batch must cost one
        forward pass — the second takes the first's value."""
        weights = uniform_weights(len(gcn_pool))
        with make_evaluator(gcn_pool, tiny_graph) as ev:
            a, b = ev.evaluate(
                [Candidate(weights=weights), Candidate(weights=weights)]
            )
            assert a == b
            assert ev.backend_evals == 1
            assert ev.cache_info() == {"hits": 1, "misses": 1, "size": 1, "capacity": 8192}

    def test_capacity_bounds_the_cache(self, gcn_pool, tiny_graph):
        n = len(gcn_pool)
        with make_evaluator(gcn_pool, tiny_graph, cache_size=2) as ev:
            rng = np.random.default_rng(0)
            for _ in range(5):
                w = rng.random(n)
                ev.accuracy_of(weights=w / w.sum())
            assert ev.cache_info()["size"] <= 2


class TestPersistedCache:
    """``cache_path=`` carries scored mixes across evaluator lifetimes."""

    def test_round_trip_warm_start(self, gcn_pool, tiny_graph, tmp_path):
        path = tmp_path / "scores.json"
        with make_evaluator(gcn_pool, tiny_graph, cache_path=path) as ev:
            cold = greedy_soup(gcn_pool, tiny_graph, evaluator=ev)
            cold_evals = ev.backend_evals
        assert path.exists()
        with make_evaluator(gcn_pool, tiny_graph, cache_path=path) as ev:
            warm = greedy_soup(gcn_pool, tiny_graph, evaluator=ev)
            assert ev.backend_evals == 0  # every mix came from disk
            assert ev.cache_info()["hits"] >= cold_evals
        assert warm.val_acc == cold.val_acc and warm.test_acc == cold.test_acc
        for name in cold.state_dict:
            np.testing.assert_array_equal(cold.state_dict[name], warm.state_dict[name])

    def test_value_types_survive_the_round_trip(self, gcn_pool, tiny_graph, tmp_path):
        path = tmp_path / "scores.json"
        weights = uniform_weights(len(gcn_pool))
        with make_evaluator(gcn_pool, tiny_graph, cache_path=path) as ev:
            before = ev.accuracy_of(weights=weights)
        with make_evaluator(gcn_pool, tiny_graph, cache_path=path) as ev:
            after = ev.accuracy_of(weights=weights)
            assert ev.cache_info()["hits"] == 1
        assert after == before
        assert type(after) is type(before)  # np.float64 stays np.float64

    def test_missing_file_starts_empty(self, gcn_pool, tiny_graph, tmp_path):
        path = tmp_path / "nested" / "fresh.json"
        with make_evaluator(gcn_pool, tiny_graph, cache_path=path) as ev:
            ev.accuracy_of(weights=uniform_weights(len(gcn_pool)))
            assert ev.cache_info()["misses"] == 1
        assert path.exists()  # parents created on save

    def test_corrupt_file_warns_and_starts_empty(self, gcn_pool, tiny_graph, tmp_path):
        path = tmp_path / "scores.json"
        path.write_text("{not json")
        with pytest.warns(RuntimeWarning, match="cache"):
            ev = make_evaluator(gcn_pool, tiny_graph, cache_path=path)
        try:
            assert ev.cache_info()["size"] == 0
            ev.accuracy_of(weights=uniform_weights(len(gcn_pool)))
        finally:
            ev.close()
        # and the rewrite repaired the file
        with make_evaluator(gcn_pool, tiny_graph, cache_path=path) as ev:
            assert ev.cache_info()["size"] == 1

    def test_load_trims_to_capacity_keeping_newest(self, gcn_pool, tiny_graph, tmp_path):
        path = tmp_path / "scores.json"
        n = len(gcn_pool)
        rng = np.random.default_rng(3)
        mixes = [w / w.sum() for w in rng.random((5, n))]
        with make_evaluator(gcn_pool, tiny_graph, cache_path=path) as ev:
            for w in mixes:
                ev.accuracy_of(weights=w)
        with make_evaluator(gcn_pool, tiny_graph, cache_size=2, cache_path=path) as ev:
            assert ev.cache_info()["size"] == 2
            ev.accuracy_of(weights=mixes[-1])  # newest entry survived the trim
            assert ev.cache_info()["hits"] == 1

    def test_disabled_cache_never_persists(self, gcn_pool, tiny_graph, tmp_path):
        path = tmp_path / "scores.json"
        with make_evaluator(gcn_pool, tiny_graph, cache_size=0, cache_path=path) as ev:
            ev.accuracy_of(weights=uniform_weights(len(gcn_pool)))
        assert not path.exists()


class TestWorkerCountValidation:
    """`True` used to slip through as num_workers=1; every entry point now
    applies the scheduler's strict integer rule."""

    @pytest.mark.parametrize("bad", [True, False, 2.5, "4", None])
    def test_make_evaluator_rejects_non_integers(self, gcn_pool, tiny_graph, bad):
        with pytest.raises(ValueError, match="integer"):
            make_evaluator(gcn_pool, tiny_graph, backend="thread", num_workers=bad)

    def test_thread_evaluator_rejects_bool(self, gcn_pool, tiny_graph):
        with pytest.raises(ValueError, match="integer"):
            ThreadEvaluator(gcn_pool, tiny_graph, num_workers=True)

    def test_process_evaluator_rejects_bool(self, gcn_pool, tiny_graph):
        with pytest.raises(ValueError, match="integer"):
            ProcessEvaluator(gcn_pool, tiny_graph, num_workers=True)

    def test_eval_service_rejects_bool(self, gcn_pool, tiny_graph):
        from repro.distributed.eval_service import EvalService, stack_flat_states

        flats, params = stack_flat_states(gcn_pool.states)
        with pytest.raises(ValueError, match="integer"):
            EvalService(
                gcn_pool.model_config, tiny_graph, flats, params, num_workers=True
            )

    def test_zero_workers_still_rejected(self, gcn_pool, tiny_graph):
        with pytest.raises(ValueError, match="at least one"):
            make_evaluator(gcn_pool, tiny_graph, backend="process", num_workers=0)

    def test_cache_size_rejects_bool(self, gcn_pool, tiny_graph):
        with pytest.raises(ValueError, match="cache_size"):
            make_evaluator(gcn_pool, tiny_graph, cache_size=True)
