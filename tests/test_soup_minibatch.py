"""Minibatched alpha objectives (§VI-A: "techniques like minibatching to
stabilize training") for LS and PLS."""

from __future__ import annotations

import numpy as np
import pytest

from repro.soup import PLSConfig, SoupConfig, learned_soup, partition_learned_soup


class TestMinibatchedLS:
    def test_zero_batch_is_exact_full_batch(self, gcn_pool, tiny_graph):
        """val_batch_size=0 must take the historical full-batch code path."""
        a = learned_soup(gcn_pool, tiny_graph, SoupConfig(epochs=6, seed=4))
        b = learned_soup(gcn_pool, tiny_graph, SoupConfig(epochs=6, seed=4, val_batch_size=0))
        np.testing.assert_array_equal(a.extras["alphas"], b.extras["alphas"])

    def test_oversized_batch_equals_full_batch(self, gcn_pool, tiny_graph):
        """A batch larger than the alpha-train slice degenerates to full batch."""
        full = learned_soup(gcn_pool, tiny_graph, SoupConfig(epochs=6, seed=4))
        over = learned_soup(
            gcn_pool, tiny_graph, SoupConfig(epochs=6, seed=4, val_batch_size=10_000)
        )
        np.testing.assert_array_equal(full.extras["alphas"], over.extras["alphas"])

    def test_small_batch_changes_trajectory(self, gcn_pool, tiny_graph):
        full = learned_soup(gcn_pool, tiny_graph, SoupConfig(epochs=6, seed=4))
        mini = learned_soup(gcn_pool, tiny_graph, SoupConfig(epochs=6, seed=4, val_batch_size=8))
        assert not np.array_equal(full.extras["alphas"], mini.extras["alphas"])

    def test_minibatched_run_is_deterministic(self, gcn_pool, tiny_graph):
        cfg = SoupConfig(epochs=6, seed=4, val_batch_size=8)
        a = learned_soup(gcn_pool, tiny_graph, cfg)
        b = learned_soup(gcn_pool, tiny_graph, cfg)
        np.testing.assert_array_equal(a.extras["alphas"], b.extras["alphas"])

    def test_minibatched_weights_stay_on_simplex(self, gcn_pool, tiny_graph):
        result = learned_soup(
            gcn_pool, tiny_graph, SoupConfig(epochs=10, seed=0, val_batch_size=4)
        )
        w = result.extras["weights"]
        assert np.all(w >= 0.0)
        np.testing.assert_allclose(w.sum(axis=0), np.ones(w.shape[1]), atol=1e-9)
        assert 0.0 <= result.test_acc <= 1.0

    def test_negative_batch_size_rejected(self):
        with pytest.raises(ValueError, match="val_batch_size"):
            SoupConfig(val_batch_size=-1)


class TestMinibatchedPLS:
    def test_pls_honours_batch_cap(self, small_pool, small_graph):
        cfg = PLSConfig(
            epochs=8, seed=2, num_partitions=8, partition_budget=4, val_batch_size=5
        )
        result = partition_learned_soup(small_pool, small_graph, cfg)
        assert 0.0 <= result.test_acc <= 1.0
        w = result.extras["weights"]
        np.testing.assert_allclose(w.sum(axis=0), np.ones(w.shape[1]), atol=1e-9)

    def test_pls_batched_vs_unbatched_differ(self, small_pool, small_graph):
        base = dict(epochs=8, seed=2, num_partitions=8, partition_budget=4)
        a = partition_learned_soup(small_pool, small_graph, PLSConfig(**base))
        b = partition_learned_soup(small_pool, small_graph, PLSConfig(val_batch_size=3, **base))
        assert not np.array_equal(a.extras["alphas"], b.extras["alphas"])
