"""The documented public API surface: everything README/examples rely on.

Guards against accidental removals/renames: each symbol below appears in
README.md, DESIGN.md or the example scripts.
"""

from __future__ import annotations

import importlib

import pytest


TOP_LEVEL = ["load_dataset", "dataset_names", "Graph", "build_model", "model_names",
             "TrainConfig", "train_model", "evaluate", "accuracy", "__version__"]

SOUP = ["SoupResult", "uniform_soup", "greedy_soup", "gis_soup", "learned_soup",
        "partition_learned_soup", "SoupConfig", "PLSConfig", "soup", "soup_method_names",
        "logit_ensemble", "vote_ensemble", "ingredient_dropout_soup",
        "diversity_weighted_soup", "average", "interpolate", "weighted_sum"]

DISTRIBUTED = ["train_ingredients", "IngredientPool", "WorkerPoolSimulator",
               "eq1_estimate", "eq2_min_time", "TaskSchedule"]

GRAPH = ["CSR", "Graph", "load_dataset", "partition_graph", "val_balanced_weights",
         "select_partitions", "partition_union_subgraph", "NeighborSampler",
         "GeneratorConfig", "homophilous_graph", "PAPER_STATS"]

TENSOR = ["Tensor", "no_grad", "spmm", "SparseAdj", "segment_softmax", "gather",
          "weighted_combine", "gradcheck", "init"]

EXPERIMENTS = ["make_spec", "grid_cells", "run_cell", "run_grid", "render_table1",
               "render_table2", "render_table3", "render_fig3", "render_fig4a",
               "render_fig4b", "get_or_train_pool", "PAPER_TABLE2", "PAPER_TABLE3"]

PROFILING = ["MemoryMeter", "MemoryModel", "Timer", "time_callable"]


@pytest.mark.parametrize(
    "module,symbols",
    [
        ("repro", TOP_LEVEL),
        ("repro.soup", SOUP),
        ("repro.distributed", DISTRIBUTED),
        ("repro.graph", GRAPH),
        ("repro.tensor", TENSOR),
        ("repro.experiments", EXPERIMENTS),
        ("repro.profiling", PROFILING),
    ],
)
def test_module_exports(module, symbols):
    mod = importlib.import_module(module)
    missing = [s for s in symbols if not hasattr(mod, s)]
    assert not missing, f"{module} missing documented symbols: {missing}"


def test_all_lists_are_accurate():
    """Every name in a module's __all__ must actually exist."""
    for module in ("repro", "repro.soup", "repro.graph", "repro.tensor",
                   "repro.nn", "repro.optim", "repro.train", "repro.distributed",
                   "repro.profiling", "repro.experiments", "repro.models"):
        mod = importlib.import_module(module)
        for name in getattr(mod, "__all__", []):
            assert hasattr(mod, name), f"{module}.__all__ lists missing {name}"


def test_every_public_callable_has_docstring():
    """Documentation deliverable: public API items carry doc comments."""
    undocumented = []
    for module in ("repro.soup", "repro.graph", "repro.tensor", "repro.nn",
                   "repro.optim", "repro.train", "repro.distributed",
                   "repro.profiling", "repro.experiments", "repro.models"):
        mod = importlib.import_module(module)
        for name in getattr(mod, "__all__", []):
            obj = getattr(mod, name)
            if callable(obj) and not isinstance(obj, type(importlib)):
                if not (getattr(obj, "__doc__", None) or "").strip():
                    undocumented.append(f"{module}.{name}")
    assert not undocumented, f"missing docstrings: {undocumented}"
