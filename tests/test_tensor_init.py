"""Initialisers: shape, scale, and reproducibility guarantees."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.tensor import init
from repro.tensor.ops import weighted_combine, dropout, linear
from repro.tensor import Tensor, gradcheck


class TestInitializers:
    def test_xavier_uniform_bound(self, rng):
        w = init.xavier_uniform((50, 80), rng)
        bound = math.sqrt(6.0 / 130)
        assert w.shape == (50, 80)
        assert np.all(np.abs(w) <= bound + 1e-12)

    def test_xavier_normal_std(self):
        rng = np.random.default_rng(0)
        w = init.xavier_normal((400, 400), rng)
        expected = math.sqrt(2.0 / 800)
        assert abs(w.std() - expected) / expected < 0.1

    def test_xavier_gain_scales(self):
        a = init.xavier_uniform((30, 30), np.random.default_rng(0), gain=1.0)
        b = init.xavier_uniform((30, 30), np.random.default_rng(0), gain=2.0)
        np.testing.assert_allclose(b, 2.0 * a)

    def test_kaiming_uniform_bound(self, rng):
        w = init.kaiming_uniform((64, 32), rng)
        assert w.shape == (64, 32)
        assert np.isfinite(w).all()

    def test_kaiming_normal_std(self):
        rng = np.random.default_rng(1)
        w = init.kaiming_normal((500, 100), rng)
        expected = math.sqrt(2.0 / 500)
        assert abs(w.std() - expected) / expected < 0.1

    def test_seeded_reproducibility(self):
        a = init.xavier_normal((10, 10), np.random.default_rng(42))
        b = init.xavier_normal((10, 10), np.random.default_rng(42))
        np.testing.assert_array_equal(a, b)

    def test_1d_shape(self, rng):
        assert init.xavier_uniform((16,), rng).shape == (16,)

    def test_3d_shape_fans(self, rng):
        w = init.xavier_normal((4, 8, 16), rng)
        assert w.shape == (4, 8, 16)

    def test_zeros(self):
        np.testing.assert_array_equal(init.zeros((3, 2)), np.zeros((3, 2)))

    def test_uniform_range(self, rng):
        w = init.uniform((100,), rng, low=-0.5, high=0.5)
        assert np.all(w >= -0.5) and np.all(w <= 0.5)


class TestWeightedCombine:
    """The op Learned Souping differentiates through (Eq. 3)."""

    def test_forward_is_weighted_sum(self, rng):
        stack = rng.normal(size=(3, 4, 5))
        w = np.array([0.2, 0.3, 0.5])
        out = weighted_combine(Tensor(w), stack)
        np.testing.assert_allclose(out.data, np.tensordot(w, stack, axes=(0, 0)))

    def test_unit_weight_selects_ingredient(self, rng):
        stack = rng.normal(size=(4, 3))
        out = weighted_combine(Tensor(np.array([0.0, 0.0, 1.0, 0.0])), stack)
        np.testing.assert_allclose(out.data, stack[2])

    def test_gradient_is_inner_product(self, rng):
        stack = rng.normal(size=(3, 2, 2))
        w = Tensor(rng.normal(size=3), requires_grad=True)
        out = weighted_combine(w, stack)
        g = rng.normal(size=(2, 2))
        out.backward(g)
        expected = np.array([np.sum(stack[i] * g) for i in range(3)])
        np.testing.assert_allclose(w.grad, expected)

    def test_gradcheck(self, rng):
        stack = rng.normal(size=(4, 3, 2))
        w = Tensor(rng.normal(size=4), requires_grad=True)
        gradcheck(lambda w: (weighted_combine(w, stack) ** 2).sum(), [w])

    def test_shape_mismatch_raises(self, rng):
        with pytest.raises(ValueError):
            weighted_combine(Tensor(np.ones(3)), rng.normal(size=(4, 2)))

    def test_matrix_weights_rejected(self, rng):
        with pytest.raises(ValueError):
            weighted_combine(Tensor(np.ones((3, 2))), rng.normal(size=(3, 2)))


class TestDropoutOp:
    def test_eval_mode_identity(self, rng):
        x = Tensor(rng.normal(size=(5, 5)))
        out = dropout(x, 0.5, rng, training=False)
        assert out is x

    def test_zero_p_identity(self, rng):
        x = Tensor(rng.normal(size=(5, 5)))
        assert dropout(x, 0.0, rng) is x

    def test_scaling_preserves_expectation(self):
        rng = np.random.default_rng(0)
        x = Tensor(np.ones((200, 200)))
        out = dropout(x, 0.4, rng)
        assert abs(out.data.mean() - 1.0) < 0.02

    def test_invalid_p_raises(self, rng):
        with pytest.raises(ValueError):
            dropout(Tensor(np.ones(3)), 1.0, rng)

    def test_mask_zeroes_fraction(self):
        rng = np.random.default_rng(3)
        out = dropout(Tensor(np.ones(10_000)), 0.3, rng)
        frac_zero = np.mean(out.data == 0.0)
        assert abs(frac_zero - 0.3) < 0.03

    def test_grad_passes_through_mask(self):
        rng = np.random.default_rng(5)
        x = Tensor(np.ones(100), requires_grad=True)
        out = dropout(x, 0.5, rng)
        out.sum().backward()
        # gradient is exactly the mask (0 or 1/keep)
        assert set(np.round(np.unique(x.grad), 6)) <= {0.0, 2.0}


class TestLinearOp:
    def test_linear_with_bias(self, rng):
        x, w, b = rng.normal(size=(4, 3)), rng.normal(size=(3, 2)), rng.normal(size=2)
        out = linear(Tensor(x), Tensor(w), Tensor(b))
        np.testing.assert_allclose(out.data, x @ w + b)

    def test_linear_no_bias(self, rng):
        x, w = rng.normal(size=(4, 3)), rng.normal(size=(3, 2))
        np.testing.assert_allclose(linear(Tensor(x), Tensor(w)).data, x @ w)
