"""GNN architectures: shapes, learning ability, gradients, determinism."""

from __future__ import annotations

import numpy as np
import pytest

from repro.models import GAT, GCN, GraphSAGE, MLP, build_model, model_names
from repro.nn import cross_entropy
from repro.optim import Adam
from repro.tensor import Tensor

ARCHS = ["gcn", "sage", "gat", "gin", "mlp"]


def fresh(arch, graph, hidden=16, seed=0, **kw):
    return build_model(arch, graph.feature_dim, graph.num_classes, hidden_dim=hidden, seed=seed, **kw)


class TestConstruction:
    def test_registry_names(self):
        assert set(model_names()) == {"gcn", "sage", "gat", "gin", "mlp"}

    def test_unknown_arch(self, tiny_graph):
        with pytest.raises(KeyError):
            build_model("transformer", 8, 4)

    @pytest.mark.parametrize("arch", ARCHS)
    def test_seeded_init_identical(self, tiny_graph, arch):
        a = fresh(arch, tiny_graph, seed=7)
        b = fresh(arch, tiny_graph, seed=7)
        for (_, pa), (_, pb) in zip(a.named_parameters(), b.named_parameters()):
            np.testing.assert_array_equal(pa.data, pb.data)

    @pytest.mark.parametrize("arch", ARCHS)
    def test_different_seed_differs(self, tiny_graph, arch):
        a = fresh(arch, tiny_graph, seed=1)
        b = fresh(arch, tiny_graph, seed=2)
        flat_a = np.concatenate([p.data.ravel() for _, p in a.named_parameters()])
        flat_b = np.concatenate([p.data.ravel() for _, p in b.named_parameters()])
        assert not np.array_equal(flat_a, flat_b)

    def test_invalid_layers(self):
        rng = np.random.default_rng(0)
        for cls in (GCN, GraphSAGE, GAT, MLP):
            with pytest.raises(ValueError):
                cls(4, 8, 2, num_layers=0, rng=rng)

    def test_three_layer_models(self, tiny_graph):
        for arch in ARCHS:
            m = build_model(arch, tiny_graph.feature_dim, tiny_graph.num_classes, num_layers=3, seed=0)
            out = m(tiny_graph)
            assert out.shape == (tiny_graph.num_nodes, tiny_graph.num_classes)


class TestForward:
    @pytest.mark.parametrize("arch", ARCHS)
    def test_output_shape(self, tiny_graph, arch):
        out = fresh(arch, tiny_graph)(tiny_graph)
        assert out.shape == (tiny_graph.num_nodes, tiny_graph.num_classes)

    @pytest.mark.parametrize("arch", ARCHS)
    def test_output_finite(self, tiny_graph, arch):
        out = fresh(arch, tiny_graph)(tiny_graph)
        assert np.isfinite(out.data).all()

    @pytest.mark.parametrize("arch", ARCHS)
    def test_eval_forward_deterministic(self, tiny_graph, arch):
        m = fresh(arch, tiny_graph)
        m.eval()
        a = m(tiny_graph).data
        b = m(tiny_graph).data
        np.testing.assert_array_equal(a, b)

    def test_dropout_changes_training_forward(self, tiny_graph):
        m = fresh("gcn", tiny_graph)
        m.train()
        a = m(tiny_graph, rng=np.random.default_rng(1)).data
        b = m(tiny_graph, rng=np.random.default_rng(2)).data
        assert not np.array_equal(a, b)

    def test_gcn_uses_structure(self, tiny_graph):
        """Shuffling features must change a GCN's output (it aggregates)."""
        m = fresh("gcn", tiny_graph)
        m.eval()
        base = m(tiny_graph).data
        perm = np.random.default_rng(0).permutation(tiny_graph.num_nodes)
        shuffled = m(tiny_graph, Tensor(tiny_graph.features[perm])).data
        assert not np.allclose(base, shuffled)

    def test_mlp_ignores_structure(self, tiny_graph, small_graph):
        """An MLP's per-node output depends only on that node's features."""
        m = build_model("mlp", tiny_graph.feature_dim, tiny_graph.num_classes, seed=0)
        m.eval()
        out1 = m(tiny_graph).data
        # same features, completely different graph container
        out2 = m(tiny_graph, Tensor(tiny_graph.features)).data
        np.testing.assert_array_equal(out1, out2)

    def test_gat_heads_shape_internals(self, tiny_graph):
        m = build_model("gat", tiny_graph.feature_dim, tiny_graph.num_classes, hidden_dim=8, num_heads=3, seed=0)
        out = m(tiny_graph)
        assert out.shape == (tiny_graph.num_nodes, tiny_graph.num_classes)
        # hidden layer concatenates heads: second conv consumes 8*3 features
        assert m.convs[1].linear.in_features == 24


class TestGradients:
    @pytest.mark.parametrize("arch", ARCHS)
    def test_all_parameters_receive_grad(self, tiny_graph, arch):
        m = fresh(arch, tiny_graph)
        m.eval()  # no dropout: every path active
        loss = cross_entropy(m(tiny_graph)[tiny_graph.train_idx], tiny_graph.labels[tiny_graph.train_idx])
        loss.backward()
        for name, p in m.named_parameters():
            assert p.grad is not None, f"no grad for {name}"
            assert np.isfinite(p.grad).all(), f"non-finite grad for {name}"

    @pytest.mark.parametrize("arch", ["gcn", "sage", "gat"])
    def test_can_overfit_tiny_graph(self, tiny_graph, arch):
        """A 2-layer GNN must drive training accuracy far above chance."""
        m = fresh(arch, tiny_graph, hidden=16)
        m.eval()  # disable dropout for pure capacity check
        opt = Adam(m.parameters(), lr=0.02)
        idx = tiny_graph.train_idx
        labels = tiny_graph.labels[idx]
        for _ in range(60):
            loss = cross_entropy(m(tiny_graph)[idx], labels)
            opt.zero_grad()
            loss.backward()
            opt.step()
        preds = m(tiny_graph).data[idx].argmax(axis=1)
        acc = float(np.mean(preds == labels))
        assert acc > 0.8, f"{arch} failed to fit: {acc}"


class TestStateDicts:
    @pytest.mark.parametrize("arch", ARCHS)
    def test_state_roundtrip_preserves_output(self, tiny_graph, arch):
        m = fresh(arch, tiny_graph, seed=3)
        m.eval()
        out = m(tiny_graph).data.copy()
        sd = m.state_dict()
        m2 = fresh(arch, tiny_graph, seed=99)
        m2.eval()
        m2.load_state_dict(sd)
        np.testing.assert_allclose(m2(tiny_graph).data, out)

    def test_gcn_param_names_layer_prefixed(self, tiny_graph):
        names = [n for n, _ in fresh("gcn", tiny_graph).named_parameters()]
        assert all(n.startswith("convs.") for n in names)

    def test_gat_extra_attention_params(self, tiny_graph):
        names = [n for n, _ in fresh("gat", tiny_graph).named_parameters()]
        assert any("attn_src" in n for n in names)
        assert any("attn_dst" in n for n in names)
