"""Cross-cutting souping invariants, property-tested on synthetic pools.

These tests build ingredient pools from *random* states (no training), so
they probe the algorithms' structural guarantees independently of learning
dynamics: simplex weights, equivalences between methods at degenerate
settings, metric properties of the state algebra.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.distributed import IngredientPool
from repro.soup import (
    SoupConfig,
    average,
    gis_soup,
    interpolate,
    learned_soup,
    state_distance,
    uniform_soup,
    weighted_sum,
)
from repro.soup.learned import alpha_weights, build_alpha


def synthetic_pool(tiny_graph, rng, n=4, scale=0.3):
    """A pool of random GCN-shaped states around a common centre."""
    from repro.models import build_model

    config = dict(
        arch="gcn",
        in_dim=tiny_graph.feature_dim,
        out_dim=tiny_graph.num_classes,
        hidden_dim=8,
        num_layers=2,
        dropout=0.0,
        num_heads=2,
        attn_dropout=0.0,
        seed=0,
    )
    centre = build_model(**config).state_dict()
    states = []
    for _ in range(n):
        states.append(
            OrderedDict((k, v + rng.normal(0, scale, size=v.shape)) for k, v in centre.items())
        )
    accs = list(rng.uniform(0.2, 0.8, size=n))
    return IngredientPool(
        model_config=config,
        states=states,
        val_accs=accs,
        test_accs=accs,
        train_times=[1.0] * n,
        graph_name=tiny_graph.name,
    )


class TestDegenerateEquivalences:
    def test_gis_alpha_half_reachable(self, tiny_graph, rng):
        """With granularity 3 the ratio grid is {0, .5, 1}: any GIS output
        must be expressible as a chain of such interpolations (sanity via
        re-evaluating its recorded ratio chain)."""
        pool = synthetic_pool(tiny_graph, rng)
        result = gis_soup(pool, tiny_graph, granularity=3)
        order = pool.order_by_val()
        soup = dict(pool.states[int(order[0])])
        for idx, alpha in zip(order[1:], result.extras["chosen_ratios"]):
            soup = interpolate(soup, pool.states[int(idx)], alpha)
        for name in soup:
            np.testing.assert_allclose(soup[name], result.state_dict[name], atol=1e-10)

    def test_ls_single_ingredient_returns_it(self, tiny_graph, rng):
        """With N=1 the softmax weight is exactly 1: LS must return the
        lone ingredient unchanged."""
        pool = synthetic_pool(tiny_graph, rng, n=1)
        result = learned_soup(pool, tiny_graph, SoupConfig(epochs=3, lr=0.5))
        for name, v in result.state_dict.items():
            np.testing.assert_allclose(v, pool.states[0][name], atol=1e-12)

    def test_uniform_equals_weighted_equal(self, tiny_graph, rng):
        pool = synthetic_pool(tiny_graph, rng, n=5)
        us = uniform_soup(pool, tiny_graph)
        manual = weighted_sum(pool.states, np.full(5, 0.2))
        for name in manual:
            np.testing.assert_allclose(us.state_dict[name], manual[name], atol=1e-12)

    def test_identical_ingredients_fixpoint(self, tiny_graph, rng):
        """If all ingredients are the same state, every souping method must
        return exactly that state (mixing is affine with weights summing
        to 1)."""
        pool = synthetic_pool(tiny_graph, rng, n=3, scale=0.0)
        us = uniform_soup(pool, tiny_graph)
        gis = gis_soup(pool, tiny_graph, granularity=4)
        ls = learned_soup(pool, tiny_graph, SoupConfig(epochs=4, lr=0.5))
        for result in (us, gis, ls):
            for name, v in result.state_dict.items():
                np.testing.assert_allclose(v, pool.states[0][name], atol=1e-10)


class TestSoupResultValidation:
    def _result(self, **overrides):
        from repro.soup import SoupResult

        kwargs = dict(
            method="us", state_dict={}, val_acc=0.5, test_acc=0.5,
            soup_time=1.0, peak_memory=1024,
        )
        kwargs.update(overrides)
        return SoupResult(**kwargs)

    def test_valid_result_accepted(self):
        result = self._result()
        assert result.soup_time == 1.0 and result.peak_memory == 1024

    def test_zero_measurements_accepted(self):
        result = self._result(soup_time=0.0, peak_memory=0)
        assert result.soup_time == 0.0 and result.peak_memory == 0

    def test_negative_soup_time_rejected(self):
        import pytest

        with pytest.raises(ValueError, match="soup_time"):
            self._result(soup_time=-0.001)

    def test_negative_peak_memory_rejected(self):
        import pytest

        with pytest.raises(ValueError, match="peak_memory"):
            self._result(peak_memory=-1)


class TestAlphaWeightProperties:
    @settings(max_examples=25, deadline=None)
    @given(n=st.integers(1, 8), g=st.integers(1, 5), seed=st.integers(0, 2**31 - 1))
    def test_property_softmax_weights_simplex(self, n, g, seed):
        rng = np.random.default_rng(seed)
        cfg = SoupConfig()
        alphas = build_alpha(n, g, cfg, rng)
        w = alpha_weights(alphas, cfg).data
        assert w.shape == (n, g)
        np.testing.assert_allclose(w.sum(axis=0), np.ones(g), atol=1e-9)
        assert np.all(w > 0)

    @settings(max_examples=25, deadline=None)
    @given(n=st.integers(2, 8), seed=st.integers(0, 2**31 - 1))
    def test_property_weighted_sum_convexity(self, n, seed):
        """A convex combination of states lies within the extremes
        coordinate-wise bounds."""
        rng = np.random.default_rng(seed)
        states = [OrderedDict(w=rng.normal(size=(3, 3))) for _ in range(n)]
        raw = rng.random(n)
        weights = raw / raw.sum()
        out = weighted_sum(states, weights)["w"]
        stack = np.stack([s["w"] for s in states])
        assert np.all(out <= stack.max(axis=0) + 1e-12)
        assert np.all(out >= stack.min(axis=0) - 1e-12)


class TestStateMetric:
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1))
    def test_property_triangle_inequality(self, seed):
        rng = np.random.default_rng(seed)
        def mk():
            return OrderedDict(a=rng.normal(size=(4,)), b=rng.normal(size=(2, 2)))

        x, y, z = mk(), mk(), mk()
        assert state_distance(x, z) <= state_distance(x, y) + state_distance(y, z) + 1e-9

    @settings(max_examples=25, deadline=None)
    @given(alpha=st.floats(0.0, 1.0), seed=st.integers(0, 2**31 - 1))
    def test_property_interpolation_on_segment(self, alpha, seed):
        """interpolate(a,b,t) lies on the segment: d(a,m) + d(m,b) == d(a,b)."""
        rng = np.random.default_rng(seed)
        a = OrderedDict(w=rng.normal(size=(3, 2)))
        b = OrderedDict(w=rng.normal(size=(3, 2)))
        m = interpolate(a, b, alpha)
        total = state_distance(a, b)
        np.testing.assert_allclose(
            state_distance(a, m) + state_distance(m, b), total, atol=1e-9
        )

    @settings(max_examples=25, deadline=None)
    @given(n=st.integers(2, 6), seed=st.integers(0, 2**31 - 1))
    def test_property_average_minimises_sum_sq_distance(self, n, seed):
        """The uniform soup is the Fréchet mean: perturbing it in any
        direction increases the summed squared distance to ingredients."""
        rng = np.random.default_rng(seed)
        states = [OrderedDict(w=rng.normal(size=(3,))) for _ in range(n)]
        centre = average(states)

        def cost(candidate):
            return sum(state_distance(candidate, s) ** 2 for s in states)

        base = cost(centre)
        for _ in range(3):
            nudged = OrderedDict(w=centre["w"] + rng.normal(0, 0.1, size=3))
            assert cost(nudged) >= base - 1e-9
