"""Instrumentation: memory meter, analytic model, timers."""

from __future__ import annotations

import gc
import time

import numpy as np
import pytest

from repro.profiling import MemoryMeter, MemoryModel, Timer, activation_bytes, time_callable
from repro.tensor import Tensor


class TestMemoryMeter:
    def test_counts_tensor_allocations(self):
        with MemoryMeter() as meter:
            _x = Tensor(np.zeros(1000))  # 8 kB
        assert meter.peak >= 8000

    def test_meter_is_thread_affine(self):
        """A meter only counts its owner thread's allocations: concurrent
        souping jobs (the runner's parallel dispatch) must not leak their
        activations into each other's Fig. 4b measurement."""
        import threading

        def alien_allocs():
            for _ in range(4):
                Tensor(np.zeros(100_000))  # 800 kB each, on a foreign thread

        with MemoryMeter() as meter:
            worker = threading.Thread(target=alien_allocs)
            worker.start()
            worker.join()
            _mine = Tensor(np.zeros(1000))
        assert 8000 <= meter.peak < 100_000

    def test_mmap_backed_view_counts_view_extent(self):
        """A tensor viewing a shared-memory buffer has an mmap base (no
        .nbytes); the meter must fall back to the view's own extent
        instead of crashing — the eval-service worker regression."""
        from multiprocessing import shared_memory

        shm = shared_memory.SharedMemory(create=True, size=8000)
        try:
            arr = np.ndarray((1000,), dtype=np.float64, buffer=shm.buf)
            with MemoryMeter() as meter:
                _t = Tensor(arr)
            assert meter.peak >= 8000
        finally:
            shm.close()
            shm.unlink()

    def test_views_not_double_counted(self):
        with MemoryMeter() as meter:
            base = np.zeros(1000)
            _a = Tensor(base)
            _b = Tensor(base[:500])  # view over the same buffer
        assert meter.peak < 16000

    def test_release_on_gc(self):
        with MemoryMeter() as meter:
            x = Tensor(np.zeros(100_000))
            peak_with = meter.current
            del x
            gc.collect()
            after = meter.current
        assert peak_with >= 800_000
        assert after < peak_with

    def test_peak_survives_release(self):
        with MemoryMeter() as meter:
            x = Tensor(np.zeros(50_000))
            del x
            gc.collect()
        assert meter.peak >= 400_000

    def test_no_tracking_outside_context(self):
        meter = MemoryMeter()
        _x = Tensor(np.zeros(1000))
        assert meter.peak == 0

    def test_track_bytes_and_array(self):
        with MemoryMeter() as meter:
            meter.track_bytes(500)
            meter.track_array(np.zeros(10))
        assert meter.peak == 500 + 80

    def test_track_state_dict(self):
        with MemoryMeter() as meter:
            meter.track_state_dict({"w": np.zeros((10, 10)), "b": np.zeros(10)})
        assert meter.peak == 800 + 80

    def test_transient_released_after_block(self):
        with MemoryMeter() as meter:
            with meter.transient(10_000):
                inside = meter.current
            outside = meter.current
        assert inside >= 10_000 and outside == inside - 10_000
        assert meter.peak >= 10_000

    def test_nested_meters_both_observe(self):
        with MemoryMeter() as outer:
            with MemoryMeter() as inner:
                _x = Tensor(np.zeros(1000))
            assert inner.peak >= 8000
        assert outer.peak >= 8000

    def test_reentry_resets(self):
        meter = MemoryMeter()
        with meter:
            meter.track_bytes(100)
        with meter:
            pass
        assert meter.peak == 0


class TestMemoryModel:
    def test_method_ordering_matches_paper(self):
        """US < GIS < LS on memory; PLS between US and GIS (§V-C)."""
        model = MemoryModel(n_ingredients=8, model_bytes=10_000, graph_bytes=1_000_000, activ_bytes=500_000)
        assert model.uniform() < model.gis() < model.learned()
        assert model.partition_learned(8, 32) < model.gis()

    def test_pls_scales_with_ratio(self):
        model = MemoryModel(4, 10_000, 1_000_000, 500_000)
        quarter = model.partition_learned(8, 32)
        half = model.partition_learned(16, 32)
        full = model.partition_learned(32, 32)
        assert quarter < half < full
        assert full == model.learned()

    def test_activation_bytes(self):
        out = activation_bytes(num_nodes=100, layer_widths=[64, 32], num_edges=500, edge_width=4)
        assert out == 8 * (100 * 96 + 2000)


class TestTimer:
    def test_elapsed_positive(self):
        with Timer() as t:
            time.sleep(0.01)
        assert t.elapsed >= 0.009

    def test_repr(self):
        with Timer("x") as t:
            pass
        assert "x" in repr(t)

    def test_time_callable_stats(self):
        mean, std = time_callable(lambda: time.sleep(0.002), repeats=3)
        assert mean >= 0.0015
        assert std >= 0.0

    def test_time_callable_single_repeat(self):
        mean, std = time_callable(lambda: None, repeats=1)
        assert std == 0.0

    def test_time_callable_validation(self):
        with pytest.raises(ValueError):
            time_callable(lambda: None, repeats=0)
