"""End-to-end integration: the complete paper pipeline on a small graph.

Phase 1 (zero-communication ingredients) -> Phase 2 (all souping methods)
-> evaluation, asserting the qualitative relationships the paper reports.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.distributed import train_ingredients
from repro.graph import partition_graph
from repro.soup import (
    PLSConfig,
    SoupConfig,
    gis_soup,
    greedy_soup,
    learned_soup,
    logit_ensemble,
    partition_learned_soup,
    uniform_soup,
)
from repro.train import TrainConfig


@pytest.fixture(scope="module")
def pipeline(small_graph):
    """A full Phase-1 + Phase-2 execution shared by the assertions below."""
    pool = train_ingredients(
        "gcn",
        small_graph,
        n_ingredients=6,
        train_cfg=TrainConfig(epochs=30, lr=0.02),
        base_seed=17,
        hidden_dim=16,
        epoch_jitter=10,
    )
    partition = partition_graph(small_graph, 8, method="metis", node_weights="val", seed=0)
    results = {
        "us": uniform_soup(pool, small_graph),
        "greedy": greedy_soup(pool, small_graph),
        # paper-regime cost ratio: GIS pays (N-1)*g = 100 validation passes,
        # LS pays 20 forward+backward epochs (~60 pass-equivalents)
        "gis": gis_soup(pool, small_graph, granularity=20),
        "ls": learned_soup(pool, small_graph, SoupConfig(epochs=20, lr=0.5, seed=0)),
        "pls": partition_learned_soup(
            pool, small_graph,
            PLSConfig(epochs=20, lr=0.5, num_partitions=8, partition_budget=3, seed=0),
            partition=partition,
        ),
        "ensemble": logit_ensemble(pool, small_graph),
    }
    return pool, results


class TestPipeline:
    def test_all_methods_produce_valid_scores(self, pipeline):
        _, results = pipeline
        for name, r in results.items():
            assert 0.0 <= r.test_acc <= 1.0, name
            assert r.soup_time >= 0.0

    def test_informed_soups_beat_mean_ingredient(self, pipeline):
        """Fig 3's core message: souping recovers more than the average
        ingredient provides."""
        pool, results = pipeline
        mean_ing = float(np.mean(pool.test_accs))
        for method in ("gis", "ls"):
            assert results[method].test_acc >= mean_ing - 0.02, method

    def test_gis_val_at_least_best_ingredient(self, pipeline):
        pool, results = pipeline
        assert results["gis"].val_acc >= max(pool.val_accs) - 1e-9

    def test_ls_faster_than_gis(self, pipeline):
        """RQ1/Table III: gradient-descent souping beats exhaustive search
        on wall time (with paper-scale N and granularity)."""
        _, results = pipeline
        assert results["ls"].soup_time < results["gis"].soup_time

    def test_pls_uses_least_memory_of_learned_methods(self, pipeline):
        """RQ2/Fig 4b: PLS peak memory below both LS and GIS."""
        _, results = pipeline
        assert results["pls"].peak_memory < results["ls"].peak_memory
        assert results["pls"].peak_memory < results["gis"].peak_memory

    def test_ls_memory_is_highest(self, pipeline):
        """§V-C: LS has the highest footprint of all souping methods."""
        _, results = pipeline
        ls_peak = results["ls"].peak_memory
        for method in ("us", "greedy", "gis", "pls"):
            assert ls_peak >= results[method].peak_memory, method

    def test_us_fastest(self, pipeline):
        _, results = pipeline
        us_time = results["us"].soup_time
        for method in ("gis", "ls", "pls"):
            assert us_time < results[method].soup_time, method

    def test_soup_single_model_inference_cost(self, pipeline):
        """Soups return ONE state dict — the inference-cost advantage over
        the ensemble, which needs all N ingredient passes."""
        pool, results = pipeline
        for method in ("us", "greedy", "gis", "ls", "pls"):
            assert set(results[method].state_dict) == set(pool.states[0]), method
        assert results["ensemble"].extras["inference_passes"] == len(pool)

    def test_ensemble_accuracy_is_the_bar(self, pipeline):
        """Ensembles are the accuracy ceiling soups aim for; the best soup
        should land within a few points of the ensemble (Graph Ladling's
        observation, which the paper builds on)."""
        _, results = pipeline
        best_soup = max(results[m].test_acc for m in ("us", "greedy", "gis", "ls", "pls"))
        assert best_soup >= results["ensemble"].test_acc - 0.06

    def test_phase1_schedule_consistent_with_eq1(self, pipeline):
        """The simulated 8-worker makespan must respect the Graham bounds
        around Eq. (1)'s estimate."""
        pool, _ = pipeline
        sched = pool.schedule
        t_single = float(np.mean(pool.train_times))
        eq1 = (len(pool) / sched.num_workers) * t_single
        assert sched.makespan >= max(pool.train_times) - 1e-9
        assert sched.makespan <= eq1 + max(pool.train_times) + 1e-9


class TestCrossArchitecture:
    @pytest.mark.parametrize("arch", ["sage", "gat"])
    def test_full_pipeline_other_archs(self, tiny_graph, arch):
        pool = train_ingredients(
            arch,
            tiny_graph,
            n_ingredients=3,
            train_cfg=TrainConfig(epochs=10, lr=0.02),
            base_seed=2,
            hidden_dim=8,
            num_heads=2,
        )
        us = uniform_soup(pool, tiny_graph)
        ls = learned_soup(pool, tiny_graph, SoupConfig(epochs=8, lr=0.5))
        assert np.isfinite(us.test_acc) and np.isfinite(ls.test_acc)
