"""Dataset registry: the four Table-I analogues."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import DATASETS, PAPER_STATS, dataset_names, load_dataset


class TestRegistry:
    def test_four_datasets_in_paper_order(self):
        assert dataset_names() == ["flickr", "ogbn-arxiv", "reddit", "ogbn-products"]

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            load_dataset("citeseer")

    def test_class_counts_match_paper(self):
        for name in dataset_names():
            assert DATASETS[name].num_classes == PAPER_STATS[name]["classes"]

    def test_split_ratios_match_paper(self):
        for name in dataset_names():
            assert DATASETS[name].split == PAPER_STATS[name]["split"]

    def test_node_count_ordering_matches_paper(self):
        ours = [DATASETS[n].num_nodes for n in dataset_names()]
        paper = [PAPER_STATS[n]["nodes"] for n in dataset_names()]
        assert np.argsort(ours).tolist() == np.argsort(paper).tolist()

    def test_products_is_largest(self):
        sizes = {n: DATASETS[n].num_nodes for n in dataset_names()}
        assert max(sizes, key=sizes.get) == "ogbn-products"


class TestLoading:
    def test_load_flickr(self):
        g = load_dataset("flickr", seed=0)
        assert g.num_classes == 7
        assert g.name == "flickr"
        tr, va, te = g.split_counts()
        np.testing.assert_allclose(tr / g.num_nodes, 0.5, atol=0.01)

    def test_load_deterministic(self):
        a = load_dataset("ogbn-arxiv", seed=3)
        b = load_dataset("ogbn-arxiv", seed=3)
        np.testing.assert_array_equal(a.features, b.features)

    def test_seed_changes_graph(self):
        a = load_dataset("flickr", seed=0)
        b = load_dataset("flickr", seed=1)
        assert not np.array_equal(a.features, b.features)

    def test_scale_shrinks(self):
        full = DATASETS["flickr"].num_nodes
        g = load_dataset("flickr", seed=0, scale=0.25)
        assert g.num_nodes < full
        g.validate()

    def test_scale_floor_keeps_classes_populated(self):
        g = load_dataset("ogbn-products", seed=0, scale=0.01)
        assert len(np.unique(g.labels)) == 47

    def test_bad_scale_raises(self):
        with pytest.raises(ValueError):
            load_dataset("flickr", scale=-1.0)

    def test_products_split_is_label_scarce(self):
        g = load_dataset("ogbn-products", seed=0)
        tr, va, te = g.split_counts()
        assert te > tr  # 0.88 test vs 0.10 train, the paper's inductive regime

    def test_difficulty_ordering_reddit_vs_flickr(self):
        """Reddit's analogue must be structurally easier than Flickr's:
        higher homophily and lower feature noise (the Table II ordering)."""
        assert DATASETS["reddit"].homophily > DATASETS["flickr"].homophily
        assert DATASETS["reddit"].feature_noise < DATASETS["flickr"].feature_noise
