"""Synthetic dataset generators: determinism, homophily, splits, features."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import GeneratorConfig, Graph, homophilous_graph, random_split_masks


def cfg(**overrides):
    base = dict(
        num_nodes=300,
        num_classes=5,
        avg_degree=8.0,
        homophily=0.7,
        feature_dim=16,
        feature_noise=1.0,
        name="t",
    )
    base.update(overrides)
    return GeneratorConfig(**base)


class TestConfigValidation:
    def test_bad_homophily(self):
        with pytest.raises(ValueError):
            cfg(homophily=1.5)

    def test_too_few_classes(self):
        with pytest.raises(ValueError):
            cfg(num_classes=1)

    def test_bad_split(self):
        with pytest.raises(ValueError):
            cfg(split=(0.5, 0.5, 0.5))


class TestGeneratedGraph:
    def test_returns_valid_graph(self):
        g = homophilous_graph(cfg(), seed=0)
        assert isinstance(g, Graph)
        g.validate()

    def test_determinism(self):
        a = homophilous_graph(cfg(), seed=5)
        b = homophilous_graph(cfg(), seed=5)
        np.testing.assert_array_equal(a.labels, b.labels)
        np.testing.assert_array_equal(a.features, b.features)
        np.testing.assert_array_equal(a.csr.indices, b.csr.indices)

    def test_different_seeds_differ(self):
        a = homophilous_graph(cfg(), seed=1)
        b = homophilous_graph(cfg(), seed=2)
        assert not np.array_equal(a.features, b.features)

    def test_symmetric(self):
        assert homophilous_graph(cfg(), seed=0).csr.is_symmetric()

    def test_no_self_loops(self):
        assert not homophilous_graph(cfg(), seed=0).csr.has_self_loops()

    def test_every_class_present(self):
        g = homophilous_graph(cfg(num_classes=12, class_skew=2.0), seed=0)
        assert len(np.unique(g.labels)) == 12

    def test_average_degree_close_to_target(self):
        g = homophilous_graph(cfg(num_nodes=2000, avg_degree=12.0), seed=0)
        # dedup/self-edge removal shaves a bit; expect within 25%
        measured = g.num_edges / g.num_nodes
        assert 0.75 * 12.0 <= measured <= 1.05 * 12.0

    def test_high_homophily_vs_low(self):
        def edge_homophily(g):
            src, dst = g.csr.edge_list()
            return float(np.mean(g.labels[src] == g.labels[dst]))

        high = edge_homophily(homophilous_graph(cfg(homophily=0.9), seed=3))
        low = edge_homophily(homophilous_graph(cfg(homophily=0.1), seed=3))
        assert high > low + 0.3

    def test_features_carry_class_signal(self):
        g = homophilous_graph(cfg(feature_noise=0.3), seed=0)
        # class centroids must be farther apart than within-class scatter
        centroids = np.stack([g.features[g.labels == c].mean(axis=0) for c in range(5)])
        between = np.linalg.norm(centroids - centroids.mean(axis=0), axis=1).mean()
        within = np.mean(
            [np.linalg.norm(g.features[g.labels == c] - centroids[c], axis=1).mean() for c in range(5)]
        )
        assert between > within * 0.15

    def test_degree_heterogeneity(self):
        g = homophilous_graph(cfg(num_nodes=1500, degree_sigma=1.2), seed=0)
        deg = g.csr.in_degrees()
        assert deg.max() >= 5 * max(deg.mean(), 1.0)  # heavy tail exists


class TestSplits:
    def test_split_ratios(self):
        g = homophilous_graph(cfg(split=(0.5, 0.25, 0.25)), seed=0)
        tr, va, te = g.split_counts()
        assert tr == 150 and va == 75 and te == 75

    def test_masks_partition_nodes(self):
        g = homophilous_graph(cfg(), seed=0)
        total = g.train_mask.astype(int) + g.val_mask.astype(int) + g.test_mask.astype(int)
        np.testing.assert_array_equal(total, np.ones(g.num_nodes, dtype=int))

    def test_random_split_masks_deterministic(self):
        a = random_split_masks(100, (0.6, 0.2, 0.2), np.random.default_rng(7))
        b = random_split_masks(100, (0.6, 0.2, 0.2), np.random.default_rng(7))
        for ma, mb in zip(a, b):
            np.testing.assert_array_equal(ma, mb)

    def test_random_split_sizes(self):
        train, val, test = random_split_masks(200, (0.54, 0.18, 0.28), np.random.default_rng(0))
        assert train.sum() == 108 and val.sum() == 36
        assert train.sum() + val.sum() + test.sum() == 200
