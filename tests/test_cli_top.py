"""The top-level ``python -m repro`` command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["brew"])

    def test_soup_defaults(self):
        args = build_parser().parse_args(["soup", "ls", "gcn", "flickr"])
        assert args.epochs == 40 and args.lr == 1.0 and args.normalize == "softmax"

    def test_bad_dataset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train", "gcn", "cora"])

    def test_bad_normalize_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["soup", "ls", "gcn", "flickr", "--normalize", "entmax"])

    def test_executor_defaults(self):
        args = build_parser().parse_args(["train", "gcn", "flickr"])
        assert args.executor == "serial"
        assert args.checkpoint_dir is None and args.resume is False and args.workers is None

    def test_executor_flags_parsed(self):
        args = build_parser().parse_args(
            ["train", "gcn", "flickr", "--executor", "process", "--workers", "4",
             "--checkpoint-dir", "ckpt", "--resume"]
        )
        assert args.executor == "process" and args.workers == 4
        assert args.checkpoint_dir == "ckpt" and args.resume is True

    def test_soup_accepts_executor_flags(self):
        args = build_parser().parse_args(["soup", "ls", "gcn", "flickr", "--executor", "thread"])
        assert args.executor == "thread"

    def test_bad_executor_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train", "gcn", "flickr", "--executor", "mpi"])


class TestInformationalCommands:
    def test_datasets_lists_all_four(self, capsys):
        assert main(["datasets", "--scale", "0.25"]) == 0
        out = capsys.readouterr().out
        for name in ("flickr", "ogbn-arxiv", "reddit", "ogbn-products"):
            assert name in out

    def test_methods_lists_registry(self, capsys):
        assert main(["methods"]) == 0
        out = capsys.readouterr().out
        for name in ("us", "gis", "ls", "pls", "radin", "sparse"):
            assert name in out


class TestTrainExecutors:
    def test_train_process_executor_with_checkpoint_and_resume(self, tmp_path, monkeypatch, capsys):
        """End-to-end: `train --executor process --checkpoint-dir … --resume`
        trains, checkpoints, and resumes from a fresh pool cache."""
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        ckpt = tmp_path / "ckpt"
        argv = [
            "train", "gcn", "flickr", "-n", "2", "--scale", "0.1",
            "--executor", "process", "--workers", "2",
            "--checkpoint-dir", str(ckpt),
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "pool: 2 x gcn" in first
        assert sorted(p.name for p in ckpt.glob("*/*.npz")) == [
            "ingredient-00000.npz",
            "ingredient-00001.npz",
        ]
        # second run with a clean pool cache resumes from the checkpoints
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache2"))
        assert main(argv + ["--resume"]) == 0
        assert "pool: 2 x gcn" in capsys.readouterr().out


class TestSimulate:
    def test_clean_simulation(self, capsys):
        assert main(["simulate", "-n", "8", "-w", "4"]) == 0
        out = capsys.readouterr().out
        assert "makespan" in out and "utilisation" in out
        assert "dead workers" not in out

    def test_fault_injection_reported(self, capsys):
        assert main(["simulate", "-n", "8", "-w", "4", "--fail-at", "0.5"]) == 0
        out = capsys.readouterr().out
        assert "dead workers: [0]" in out

    def test_straggler_flag(self, capsys):
        assert main(["simulate", "-n", "8", "-w", "2", "--straggler", "0.25"]) == 0
        assert "makespan" in capsys.readouterr().out


class TestPipelineCommands:
    """train/soup/partition on a tiny scaled dataset (cache-backed)."""

    SCALE = ["--scale", "0.25"]

    def test_train_then_soup_uses_cache(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(["train", "gcn", "flickr", "-n", "3"] + self.SCALE) == 0
        out = capsys.readouterr().out
        assert "pool: 3 x gcn" in out
        cached = list(tmp_path.glob("*.npz"))
        assert len(cached) == 1
        # souping afterwards must reuse the cached pool (no new files)
        assert main(["soup", "us", "gcn", "flickr", "-n", "3"] + self.SCALE) == 0
        out = capsys.readouterr().out
        assert "test acc" in out
        assert list(tmp_path.glob("*.npz")) == cached

    def test_soup_unknown_method_exits_nonzero(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(["soup", "gazpacho", "gcn", "flickr"] + self.SCALE) == 2

    def test_soup_sparsemax_ls(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert (
            main(
                ["soup", "ls", "gcn", "flickr", "-n", "3", "--epochs", "5",
                 "--normalize", "sparsemax"] + self.SCALE
            )
            == 0
        )
        assert "val acc" in capsys.readouterr().out

    def test_partition_reports_stats(self, capsys):
        assert main(["partition", "flickr", "-k", "8"] + self.SCALE) == 0
        out = capsys.readouterr().out
        assert "cut edges" in out and "imbalance" in out
