"""Shared-memory graph transport (`repro.distributed.shm`).

The transport contract: a graph packed into one shared segment rebuilds
bit-identically through a few-hundred-byte picklable descriptor, attached
views are zero-copy, and the creator-owned segment disappears exactly
when the context manager exits — never earlier (a worker detaching or
dying must not unlink it) and never twice.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.distributed import (
    SharedGraphBuffer,
    SharedPoolBuffer,
    attach_graph,
    attach_pool,
    stack_flat_states,
)


class TestSharedGraphBuffer:
    def test_round_trip_bit_identical(self, tiny_graph):
        with SharedGraphBuffer.create(tiny_graph) as buf:
            handle = attach_graph(buf.spec)
            g = handle.graph
            np.testing.assert_array_equal(g.csr.indptr, tiny_graph.csr.indptr)
            np.testing.assert_array_equal(g.csr.indices, tiny_graph.csr.indices)
            np.testing.assert_array_equal(g.features, tiny_graph.features)
            np.testing.assert_array_equal(g.labels, tiny_graph.labels)
            np.testing.assert_array_equal(g.train_mask, tiny_graph.train_mask)
            np.testing.assert_array_equal(g.val_mask, tiny_graph.val_mask)
            np.testing.assert_array_equal(g.test_mask, tiny_graph.test_mask)
            assert g.num_classes == tiny_graph.num_classes
            assert g.name == tiny_graph.name

    def test_attached_views_are_zero_copy(self, tiny_graph):
        """The rebuilt graph's arrays must view the shared mapping, not
        private copies — the whole point of the transport."""
        with SharedGraphBuffer.create(tiny_graph) as buf:
            handle = attach_graph(buf.spec)
            for arr in (handle.graph.features, handle.graph.labels, handle.graph.csr.indices):
                assert not arr.flags.owndata

    def test_spec_is_small_and_picklable(self, tiny_graph):
        """The descriptor crossing the process boundary must stay tiny no
        matter the graph size (it replaces a full graph pickle)."""
        with SharedGraphBuffer.create(tiny_graph) as buf:
            payload = pickle.dumps(buf.spec)
            assert len(payload) < 2048
            spec = pickle.loads(payload)
            assert spec == buf.spec
            assert spec.nbytes > 0

    def test_unlink_is_idempotent(self, tiny_graph):
        buf = SharedGraphBuffer.create(tiny_graph)
        buf.unlink()
        buf.unlink()  # second release must be a no-op, not an error

    def test_segment_released_on_context_exit(self, tiny_graph):
        with SharedGraphBuffer.create(tiny_graph) as buf:
            spec = buf.spec
            attach_graph(spec)  # attachable while the context is live
        with pytest.raises(FileNotFoundError):
            attach_graph(spec)

    def test_segment_released_when_pool_body_raises(self, tiny_graph):
        """The executor wraps pool lifetime in the context manager; an
        exception mid-pool must still unlink the segment."""
        with pytest.raises(RuntimeError, match="boom"):
            with SharedGraphBuffer.create(tiny_graph) as buf:
                spec = buf.spec
                raise RuntimeError("boom")
        with pytest.raises(FileNotFoundError):
            attach_graph(spec)

    def test_worker_detach_does_not_unlink(self, tiny_graph):
        """A worker closing (or dying with) its attachment must leave the
        segment alive for its siblings — only the creator unlinks."""
        with SharedGraphBuffer.create(tiny_graph) as buf:
            first = attach_graph(buf.spec)
            first.close()
            second = attach_graph(buf.spec)  # still attachable
            np.testing.assert_array_equal(second.graph.features, tiny_graph.features)


class TestSharedPoolBuffer:
    """The Phase-2 pool transport: [N, D] flat states through one segment."""

    def test_round_trip_bit_identical(self, gcn_pool):
        flats, params = stack_flat_states(gcn_pool.states)
        with SharedPoolBuffer.create(flats, params) as buf:
            handle = attach_pool(buf.spec)
            np.testing.assert_array_equal(handle.flats, flats)
            assert handle.spec.params == params

    def test_attached_view_is_zero_copy(self, gcn_pool):
        flats, params = stack_flat_states(gcn_pool.states)
        with SharedPoolBuffer.create(flats, params) as buf:
            handle = attach_pool(buf.spec)
            assert not handle.flats.flags.owndata

    def test_spec_is_small_and_picklable(self, gcn_pool):
        flats, params = stack_flat_states(gcn_pool.states)
        with SharedPoolBuffer.create(flats, params) as buf:
            payload = pickle.dumps(buf.spec)
            assert len(payload) < 8192
            spec = pickle.loads(payload)
            assert spec.shape == flats.shape
            assert spec.nbytes == flats.nbytes

    def test_unlink_is_idempotent(self, gcn_pool):
        flats, params = stack_flat_states(gcn_pool.states)
        buf = SharedPoolBuffer.create(flats, params)
        buf.unlink()
        buf.unlink()  # no-op

    def test_segment_released_on_context_exit(self, gcn_pool):
        flats, params = stack_flat_states(gcn_pool.states)
        with SharedPoolBuffer.create(flats, params) as buf:
            spec = buf.spec
        with pytest.raises(FileNotFoundError):
            attach_pool(spec)

    def test_non_matrix_stack_rejected(self):
        with pytest.raises(ValueError, match=r"\[N, D\]"):
            SharedPoolBuffer.create(np.zeros(5), ())
