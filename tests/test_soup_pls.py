"""Partition Learned Souping (Algorithm 4): mechanics and §VI-B properties."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import partition_graph
from repro.soup import PLSConfig, learned_soup, partition_learned_soup, SoupConfig


FAST = dict(epochs=12, lr=0.5)


@pytest.fixture(scope="module")
def partition8(small_graph):
    return partition_graph(small_graph, 8, method="metis", node_weights="val", seed=0)


class TestPLSConfig:
    def test_defaults(self):
        cfg = PLSConfig()
        assert cfg.num_partitions == 32 and cfg.partition_budget == 8
        assert cfg.partition_ratio == 0.25

    def test_budget_validation(self):
        with pytest.raises(ValueError):
            PLSConfig(num_partitions=8, partition_budget=9)
        with pytest.raises(ValueError):
            PLSConfig(num_partitions=8, partition_budget=0)

    def test_subgraph_diversity(self):
        cfg = PLSConfig(num_partitions=32, partition_budget=8)
        assert cfg.subgraph_diversity > 10_000_000  # §VI-B claim

    def test_inherits_ls_validation(self):
        with pytest.raises(ValueError):
            PLSConfig(epochs=0)


class TestPartitionLearnedSoup:
    def test_result_structure(self, small_pool, small_graph, partition8):
        cfg = PLSConfig(**FAST, num_partitions=8, partition_budget=3)
        result = partition_learned_soup(small_pool, small_graph, cfg, partition=partition8)
        assert result.method == "pls"
        assert set(result.state_dict) == set(small_pool.states[0])
        assert result.extras["partition_ratio"] == 3 / 8
        assert result.extras["partition_cut_edges"] == partition8.cut_edges

    def test_weights_simplex(self, small_pool, small_graph, partition8):
        cfg = PLSConfig(**FAST, num_partitions=8, partition_budget=3)
        result = partition_learned_soup(small_pool, small_graph, cfg, partition=partition8)
        w = result.extras["weights"]
        np.testing.assert_allclose(w.sum(axis=0), np.ones(w.shape[1]), atol=1e-9)

    def test_computes_partition_when_absent(self, small_pool, small_graph):
        cfg = PLSConfig(**FAST, num_partitions=4, partition_budget=2)
        result = partition_learned_soup(small_pool, small_graph, cfg)
        assert result.extras["partition_time"] > 0

    def test_partition_k_mismatch_rejected(self, small_pool, small_graph, partition8):
        cfg = PLSConfig(**FAST, num_partitions=16, partition_budget=4)
        with pytest.raises(ValueError):
            partition_learned_soup(small_pool, small_graph, cfg, partition=partition8)

    def test_seed_determinism(self, small_pool, small_graph, partition8):
        cfg = PLSConfig(**FAST, num_partitions=8, partition_budget=3, seed=7)
        a = partition_learned_soup(small_pool, small_graph, cfg, partition=partition8)
        b = partition_learned_soup(small_pool, small_graph, cfg, partition=partition8)
        np.testing.assert_array_equal(a.extras["alphas"], b.extras["alphas"])

    def test_seed_determinism_without_precomputed_partition(self, small_pool, small_graph):
        """Regression: with the partition computed inside the call, PLS was
        nondeterministic because the METIS spectral seed consumed numpy's
        global RandomState (see test_graph_partition)."""
        cfg = PLSConfig(**FAST, num_partitions=8, partition_budget=3, seed=7)
        a = partition_learned_soup(small_pool, small_graph, cfg)
        b = partition_learned_soup(small_pool, small_graph, cfg)
        np.testing.assert_array_equal(a.extras["alphas"], b.extras["alphas"])
        assert a.test_acc == b.test_acc

    def test_memory_below_ls(self, small_pool, small_graph, partition8):
        """The paper's RQ2 core claim: PLS peak memory << LS peak memory."""
        ls = learned_soup(small_pool, small_graph, SoupConfig(**FAST))
        pls = partition_learned_soup(
            small_pool,
            small_graph,
            PLSConfig(**FAST, num_partitions=8, partition_budget=2),
            partition=partition8,
        )
        assert pls.peak_memory < ls.peak_memory

    def test_memory_scales_with_ratio(self, small_pool, small_graph, partition8):
        """§VI-B: memory reduction tracks R/K (R=2 uses less than R=6)."""
        small_r = partition_learned_soup(
            small_pool, small_graph,
            PLSConfig(**FAST, num_partitions=8, partition_budget=2), partition=partition8,
        )
        large_r = partition_learned_soup(
            small_pool, small_graph,
            PLSConfig(**FAST, num_partitions=8, partition_budget=6), partition=partition8,
        )
        assert small_r.peak_memory < large_r.peak_memory

    def test_r_equals_k_trains_on_full_graph(self, small_pool, small_graph, partition8):
        """With R=K every epoch subgraph is the whole graph, so PLS degrades
        to LS on the full graph (same node set every epoch)."""
        cfg = PLSConfig(**FAST, num_partitions=8, partition_budget=8, seed=0)
        result = partition_learned_soup(small_pool, small_graph, cfg, partition=partition8)
        assert result.extras["subgraph_diversity"] == 1
        # every epoch should have found validation nodes (no skipped epochs)
        assert result.extras["skipped_epochs"] == 0

    def test_r1_runs_without_cut_edges(self, small_pool, small_graph, partition8):
        """R=1 (the degradation corner): still functional, just weaker."""
        cfg = PLSConfig(epochs=16, lr=0.5, num_partitions=8, partition_budget=1, seed=0)
        result = partition_learned_soup(small_pool, small_graph, cfg, partition=partition8)
        assert 0.0 <= result.test_acc <= 1.0

    def test_history_tracks_epochs(self, small_pool, small_graph, partition8):
        cfg = PLSConfig(**FAST, num_partitions=8, partition_budget=3)
        result = partition_learned_soup(small_pool, small_graph, cfg, partition=partition8)
        assert len(result.extras["history"]) + result.extras["skipped_epochs"] == cfg.epochs

    def test_gat_pool(self, gat_pool, tiny_graph):
        """PLS through GAT on a small graph (attention + subgraphs)."""
        cfg = PLSConfig(epochs=6, lr=0.5, num_partitions=4, partition_budget=2)
        result = partition_learned_soup(gat_pool, tiny_graph, cfg)
        assert np.isfinite(result.test_acc)

    def test_pool_states_untouched(self, small_pool, small_graph, partition8):
        before = [sd["convs.0.linear.weight"].copy() for sd in small_pool.states]
        cfg = PLSConfig(**FAST, num_partitions=8, partition_budget=3)
        partition_learned_soup(small_pool, small_graph, cfg, partition=partition8)
        for sd, prev in zip(small_pool.states, before):
            np.testing.assert_array_equal(sd["convs.0.linear.weight"], prev)

    def test_accuracy_comparable_to_ls(self, small_pool, small_graph, partition8):
        """Headline: PLS achieves LS-level accuracy at a fraction of memory.
        Allow a modest tolerance — the paper itself reports parity, not wins,
        on most cells."""
        ls = learned_soup(small_pool, small_graph, SoupConfig(epochs=30, lr=0.5, seed=0))
        pls = partition_learned_soup(
            small_pool, small_graph,
            PLSConfig(epochs=30, lr=0.5, num_partitions=8, partition_budget=4, seed=0),
            partition=partition8,
        )
        assert pls.test_acc >= ls.test_acc - 0.08


class TestPLSEarlyStopping:
    def test_patience_cuts_epochs(self, small_pool, small_graph, partition8):
        cfg = PLSConfig(
            epochs=200, lr=0.5, num_partitions=8, partition_budget=4,
            early_stopping=3, seed=0,
        )
        result = partition_learned_soup(small_pool, small_graph, cfg, partition=partition8)
        assert len(result.extras["history"]) < 200
