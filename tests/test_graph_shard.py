"""Shard/assemble math: exact reconstruction, halo semantics, wire forms."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import (
    GeneratorConfig,
    Graph,
    assemble_graph,
    edges_to_csr,
    homophilous_graph,
    shard_from_arrays,
    shard_graph,
    shard_to_arrays,
)


@pytest.fixture(scope="module")
def graph():
    cfg = GeneratorConfig(
        num_nodes=300, num_classes=4, avg_degree=7.0, homophily=0.7,
        feature_dim=10, feature_noise=1.0, name="shardme",
    )
    return homophilous_graph(cfg, seed=5)


def _graph_with_isolates(num_nodes: int = 50, num_isolated: int = 7, seed: int = 1):
    rng = np.random.default_rng(seed)
    connected = num_nodes - num_isolated
    src = np.arange(connected, dtype=np.int64)
    dst = (src + 1) % connected
    csr = edges_to_csr(np.concatenate([src, dst]), np.concatenate([dst, src]), num_nodes)
    features = rng.normal(size=(num_nodes, 4))
    labels = rng.integers(0, 3, num_nodes).astype(np.int64)
    train = np.zeros(num_nodes, dtype=bool)
    val = np.zeros(num_nodes, dtype=bool)
    test = np.zeros(num_nodes, dtype=bool)
    train[0::3], val[1::3], test[2::3] = True, True, True
    return Graph(csr, features, labels, train, val, test, 3, name="iso")


def _assert_graphs_bit_identical(a: Graph, b: Graph) -> None:
    np.testing.assert_array_equal(a.csr.indptr, b.csr.indptr)
    np.testing.assert_array_equal(a.csr.indices, b.csr.indices)
    assert a.csr.num_nodes == b.csr.num_nodes
    np.testing.assert_array_equal(a.features, b.features)
    np.testing.assert_array_equal(a.labels, b.labels)
    np.testing.assert_array_equal(a.train_mask, b.train_mask)
    np.testing.assert_array_equal(a.val_mask, b.val_mask)
    np.testing.assert_array_equal(a.test_mask, b.test_mask)
    assert a.num_classes == b.num_classes
    assert a.name == b.name


class TestRoundTrip:
    @pytest.mark.parametrize("k", [1, 2, 4])
    def test_assemble_is_exact(self, graph, k):
        """assemble(shard(G, k)) == G bit-for-bit — the tentpole contract."""
        shards = shard_graph(graph, k)
        _assert_graphs_bit_identical(assemble_graph(shards), graph)

    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_assemble_exact_with_isolated_nodes(self, k):
        g = _graph_with_isolates()
        _assert_graphs_bit_identical(assemble_graph(shard_graph(g, k)), g)

    def test_assemble_order_independent(self, graph):
        shards = shard_graph(graph, 3)
        _assert_graphs_bit_identical(assemble_graph(shards[::-1]), graph)

    @pytest.mark.parametrize("k", [2, 4])
    def test_arrays_round_trip(self, graph, k):
        """shard_from_arrays(shard_to_arrays(s)) preserves every field —
        the form that crosses wire frames and shm bundles."""
        for shard in shard_graph(graph, k):
            arrays, meta = shard_to_arrays(shard)
            back = shard_from_arrays(arrays, meta)
            assert back.shard_id == shard.shard_id and back.k == shard.k
            assert back.num_global_nodes == shard.num_global_nodes
            assert back.graph_name == shard.graph_name
            for key, value in arrays.items():
                np.testing.assert_array_equal(value, getattr(back, key))
        _assert_graphs_bit_identical(
            assemble_graph(
                [
                    shard_from_arrays(*shard_to_arrays(s))
                    for s in shard_graph(graph, k)
                ]
            ),
            graph,
        )


class TestShardStructure:
    def test_owned_nodes_cover_graph(self, graph):
        shards = shard_graph(graph, 4)
        owned = np.concatenate([s.owned for s in shards])
        assert len(owned) == graph.num_nodes
        np.testing.assert_array_equal(np.sort(owned), np.arange(graph.num_nodes))

    def test_halo_is_incoming_neighbours_only(self, graph):
        """Every halo node has an edge into an owned node, and owned/halo
        never overlap — the minimal closure assembly needs."""
        for shard in shard_graph(graph, 3):
            assert not np.intersect1d(shard.owned, shard.halo).size
            owned_set = set(shard.owned.tolist())
            csr = graph.csr
            in_nbrs: set = set()
            for node in shard.owned:
                in_nbrs.update(csr.indices[csr.indptr[node] : csr.indptr[node + 1]].tolist())
            assert set(shard.halo.tolist()) == in_nbrs - owned_set

    def test_shard_bytes_fraction(self, graph):
        """Each shard carries ~(1/k + halo) of the graph — never the whole
        thing (for k >= 2 on a sparse graph)."""
        full = sum(
            arr.nbytes
            for arr in (
                graph.csr.indptr, graph.csr.indices, graph.features,
                graph.labels, graph.train_mask, graph.val_mask, graph.test_mask,
            )
        )
        for shard in shard_graph(graph, 4):
            assert shard.nbytes < full
            assert shard.n_owned <= shard.n_local <= graph.num_nodes

    def test_local_graph_masks_owned_only(self, graph):
        for shard in shard_graph(graph, 3):
            local = shard.local_graph()
            assert local.num_nodes == shard.n_local
            # halo rows carry no split membership: they exist only to
            # feed message passing into owned rows
            assert not local.train_mask[shard.n_owned :].any()
            assert not local.val_mask[shard.n_owned :].any()
            assert not local.test_mask[shard.n_owned :].any()

    def test_k1_single_shard_is_whole_graph(self, graph):
        (shard,) = shard_graph(graph, 1)
        assert shard.n_owned == graph.num_nodes
        assert shard.halo.size == 0


class TestAssembleValidation:
    def test_missing_shard_rejected(self, graph):
        shards = shard_graph(graph, 3)
        with pytest.raises(ValueError):
            assemble_graph(shards[:2])

    def test_duplicate_shard_rejected(self, graph):
        shards = shard_graph(graph, 3)
        with pytest.raises(ValueError):
            assemble_graph([shards[0], shards[1], shards[1]])

    def test_mixed_k_rejected(self, graph):
        a = shard_graph(graph, 2)
        b = shard_graph(graph, 3)
        with pytest.raises(ValueError):
            assemble_graph([a[0], b[1]])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            assemble_graph([])
