"""Binary wire frames: round trips, type preservation, strict rejection.

Every cluster message crosses a transport as one length-prefixed frame
whose first byte names its format (``repro.distributed.wire``). These
tests pin the codec's two contracts:

* **round trip** — for every format byte (and the pickle fallback) the
  decode is the exact inverse of the encode, *including* Python types
  (``float`` vs ``np.float64``), so driver-side results are identical
  whether a value travelled as binary or pickle;
* **strictness** — truncated bodies, trailing bytes, and unknown format
  bytes raise :class:`WireFormatError` instead of yielding garbage.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.distributed import wire
from repro.distributed.eval_service import EvalTask
from repro.distributed.wire import WireFormatError, decode_frame, encode_frame


class TestScalarFrames:
    def test_done_float_roundtrip(self):
        frame = encode_frame(("done", 3, 17, 0.8125))
        assert frame[:1] == b"D"
        out = decode_frame(frame)
        assert out == ("done", 3, 17, 0.8125)
        assert type(out[3]) is float

    def test_done_np_float64_preserves_type(self):
        frame = encode_frame(("done", 0, 2, np.float64(0.5)))
        out = decode_frame(frame)
        assert out[3] == 0.5 and type(out[3]) is np.float64

    def test_done_scalar_list_roundtrip(self):
        frame = encode_frame(("done", 1, 9, [0.5, 0.25, 0.125]))
        assert frame[:1] == b"S"
        out = decode_frame(frame)
        assert out == ("done", 1, 9, [0.5, 0.25, 0.125])
        assert all(type(x) is float for x in out[3])

    def test_done_np64_list_preserves_type(self):
        frame = encode_frame(("done", 1, 9, [np.float64(0.5), np.float64(1.5)]))
        assert frame[:1] == b"S"
        out = decode_frame(frame)
        assert all(type(x) is np.float64 for x in out[3])
        assert out[3] == [0.5, 1.5]

    def test_mixed_scalar_list_falls_back_to_pickle(self):
        frame = encode_frame(("done", 1, 9, [0.5, np.float64(1.5)]))
        assert frame[:1] == b"P"
        out = decode_frame(frame)
        assert type(out[3][0]) is float and type(out[3][1]) is np.float64


class TestControlFrames:
    def test_claim_roundtrip(self):
        frame = encode_frame(("claim", 2, 41))
        assert frame[:1] == b"C"
        assert decode_frame(frame) == ("claim", 2, 41)

    def test_ping_roundtrip_negative_wid(self):
        frame = encode_frame(("ping", -1))
        assert frame[:1] == b"G"
        assert decode_frame(frame) == ("ping", -1)

    def test_unknown_message_shape_pickles(self):
        frame = encode_frame(("hello", {"node": "w0"}))
        assert frame[:1] == b"P"
        assert decode_frame(frame) == ("hello", {"node": "w0"})


class TestRowFrames:
    def test_prediction_rows_roundtrip(self):
        rows = {10: np.arange(4, dtype=np.float64), 3: np.ones(4)}
        frame = encode_frame(("done", 0, 1, rows))
        assert frame[:1] == b"R"
        out = decode_frame(frame)
        assert list(out[3].keys()) == [10, 3]  # insertion order kept
        np.testing.assert_array_equal(out[3][10], rows[10])
        np.testing.assert_array_equal(out[3][3], rows[3])
        assert out[3][10].dtype == np.float64

    def test_ragged_rows_fall_back_to_pickle(self):
        rows = {0: np.ones(3), 1: np.ones(4)}
        frame = encode_frame(("done", 0, 1, rows))
        assert frame[:1] == b"P"
        out = decode_frame(frame)
        np.testing.assert_array_equal(out[3][1], np.ones(4))


class TestArrayTaskFrames:
    def test_ndarray_task_roundtrip(self):
        arr = np.arange(12, dtype=np.float64).reshape(3, 4)
        frame = encode_frame(("task", 5, arr))
        assert frame[:1] == b"A"
        kind, rid, out = decode_frame(frame)
        assert (kind, rid) == ("task", 5)
        np.testing.assert_array_equal(out, arr)
        assert out.dtype == arr.dtype and out.flags.writeable

    def test_int_array_roundtrip(self):
        arr = np.array([[1, -2], [3, 4]], dtype=np.int32)
        out = decode_frame(encode_frame(("task", 0, arr)))[2]
        np.testing.assert_array_equal(out, arr)
        assert out.dtype == np.int32

    def test_object_array_falls_back_to_pickle(self):
        arr = np.array([{"a": 1}, None], dtype=object)
        frame = encode_frame(("task", 0, arr))
        assert frame[:1] == b"P"


class TestEvalTaskFrames:
    def make_task(self, i=0, **over):
        kw = dict(
            req_id=i,
            weights=np.linspace(0, 1, 4) + i,
            groups=None,
            state=None,
            split="val",
            indices=None,
            kind="acc",
        )
        kw.update(over)
        return EvalTask(**kw)

    def test_single_task_roundtrip(self):
        task = self.make_task(7)
        frame = encode_frame(("task", 42, task))
        assert frame[:1] == b"T"
        kind, rid, out = decode_frame(frame)
        assert (kind, rid) == ("task", 42)
        assert (out.req_id, out.split, out.kind) == (7, "val", "acc")
        assert out.groups is None and out.state is None and out.indices is None
        np.testing.assert_array_equal(out.weights, task.weights)
        assert out.weights.dtype == task.weights.dtype

    def test_optional_fields_roundtrip(self):
        task = self.make_task(
            1,
            groups=np.array([0, 0, 1, 1], dtype=np.int64),
            split=None,
            indices=np.arange(5, dtype=np.int64),
            kind="logits",
        )
        out = decode_frame(encode_frame(("task", 0, task)))[2]
        np.testing.assert_array_equal(out.groups, task.groups)
        np.testing.assert_array_equal(out.indices, task.indices)
        assert out.split is None and out.kind == "logits"

    def test_batch_roundtrip(self):
        batch = tuple(self.make_task(i) for i in range(3))
        frame = encode_frame(("task", 9, batch))
        assert frame[:1] == b"U"
        kind, rid, out = decode_frame(frame)
        assert isinstance(out, tuple) and len(out) == 3
        for a, b in zip(batch, out):
            assert a.req_id == b.req_id
            np.testing.assert_array_equal(a.weights, b.weights)

    def test_state_dict_task_falls_back_to_pickle(self):
        task = self.make_task(0, weights=None, state=(("w", np.ones(2)),))
        frame = encode_frame(("task", 0, task))
        assert frame[:1] == b"P"
        out = decode_frame(frame)[2]
        np.testing.assert_array_equal(dict(out.state)["w"], np.ones(2))


class TestStrictDecode:
    def test_empty_frame_rejected(self):
        with pytest.raises(WireFormatError, match="empty"):
            decode_frame(b"")

    def test_unknown_format_byte_rejected(self):
        with pytest.raises(WireFormatError, match="unknown"):
            decode_frame(b"\xee\x00\x01")

    @pytest.mark.parametrize(
        "message",
        [
            ("claim", 2, 41),
            ("ping", 0),
            ("done", 1, 3, 0.5),
            ("done", 1, 3, [0.5, 0.25]),
            ("done", 1, 3, {0: np.ones(2)}),
            ("task", 5, np.arange(4.0)),
            ("task", 5, EvalTask(req_id=1, weights=np.ones(2), groups=None,
                                 state=None, split="val", indices=None, kind="acc")),
        ],
    )
    def test_truncation_and_trailing_bytes_rejected(self, message):
        frame = encode_frame(message)
        assert frame[:1] != b"P"  # all of these take the binary path
        for cut in (1, 2, len(frame) // 2, len(frame) - 1):
            with pytest.raises(WireFormatError):
                decode_frame(frame[:cut])
        with pytest.raises(WireFormatError):
            decode_frame(frame + b"\x00")

    def test_corrupt_pickle_rejected(self):
        with pytest.raises(WireFormatError, match="pickle"):
            decode_frame(b"P\x01\x02not-a-pickle")


class TestFormatPin:
    def test_pickle_pin_forces_fallback(self):
        prev = wire.set_wire_format("pickle")
        try:
            frame = encode_frame(("claim", 2, 5))
            assert frame[:1] == b"P"
            assert decode_frame(frame) == ("claim", 2, 5)
        finally:
            wire.set_wire_format(prev)
        assert encode_frame(("claim", 2, 5))[:1] == b"C"

    def test_unknown_format_rejected(self):
        with pytest.raises(ValueError, match="wire format"):
            wire.set_wire_format("msgpack")

    def test_decoder_accepts_both_formats(self):
        message = ("done", 1, 2, 0.75)
        binary = encode_frame(message)
        prev = wire.set_wire_format("pickle")
        try:
            pickled = encode_frame(message)
        finally:
            wire.set_wire_format(prev)
        assert decode_frame(binary) == decode_frame(pickled) == message


class TestRegistry:
    def test_reserved_bytes_rejected(self):
        for byte in (b"P", b"C", b"G", b"D", b"S", b"R", b"A"):
            with pytest.raises(ValueError, match="reserved"):
                wire.register_task_payload(byte, lambda p: False, None, None)

    def test_multibyte_format_rejected(self):
        with pytest.raises(ValueError, match="single byte"):
            wire.register_task_payload(b"XY", lambda p: False, None, None)
