"""Phase-2 candidate-evaluation engine: backends, views, determinism.

The acceptance contract under test: every registered souping method runs
through the shared evaluator and returns bit-identical
``SoupResult.state_dict`` / ``val_acc`` / ``test_acc`` across the
``serial`` × ``thread`` × ``process`` backends for a fixed seed — the
Phase-2 mirror of the Phase-1 executor determinism matrix.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.distributed import mix_candidate, stack_flat_states
from repro.soup import (
    SOUP_EXECUTORS,
    SOUP_METHODS,
    Candidate,
    DropoutSoupConfig,
    PLSConfig,
    SoupConfig,
    eval_state,
    make_evaluator,
    soup,
)
from repro.soup.state import layer_groups

#: Per-method kwargs sized for the tiny test graph (seconds, not minutes).
METHOD_KWARGS = {
    "us": {},
    "greedy": {},
    "gis": {"granularity": 5},
    "ls": {"cfg": SoupConfig(epochs=3, lr=0.5, n_restarts=2)},
    "pls": {"cfg": PLSConfig(epochs=3, lr=0.5, num_partitions=4, partition_budget=2)},
    "ls-dropout": {"cfg": DropoutSoupConfig(epochs=3, lr=0.5)},
    "ls-finetune": {"cfg": SoupConfig(epochs=2, lr=0.5), "finetune_epochs": 2},
    "diversity": {},
    "radin": {"eval_budget": 2},
    "sparse": {},
    "ensemble-logit": {},
    "ensemble-vote": {},
}


def run_all_methods(pool, graph, evaluator=None):
    return {
        name: soup(name, pool, graph, evaluator=evaluator, **METHOD_KWARGS[name])
        for name in SOUP_METHODS
    }


def assert_results_identical(a, b, label):
    assert set(a.state_dict) == set(b.state_dict), label
    for name in a.state_dict:
        np.testing.assert_array_equal(a.state_dict[name], b.state_dict[name], err_msg=f"{label}:{name}")
    assert a.val_acc == b.val_acc, label
    assert a.test_acc == b.test_acc, label


class TestBackendDeterminism:
    """All 12 methods × serial/thread/process: bit-identical results."""

    @pytest.fixture(scope="class")
    def serial_results(self, gcn_pool, tiny_graph):
        return run_all_methods(gcn_pool, tiny_graph)

    def test_method_kwargs_cover_registry(self):
        assert set(METHOD_KWARGS) == set(SOUP_METHODS)

    @pytest.mark.parametrize("backend", list(SOUP_EXECUTORS))
    def test_bit_identical_across_backends(self, gcn_pool, tiny_graph, serial_results, backend):
        with make_evaluator(gcn_pool, tiny_graph, backend=backend, num_workers=3) as ev:
            results = run_all_methods(gcn_pool, tiny_graph, evaluator=ev)
        for name, result in results.items():
            assert_results_identical(serial_results[name], result, f"{backend}/{name}")

    def test_default_matches_explicit_serial(self, gcn_pool, tiny_graph, serial_results):
        """evaluator=None (the legacy call shape) is the serial backend."""
        with make_evaluator(gcn_pool, tiny_graph, backend="serial") as ev:
            again = run_all_methods(gcn_pool, tiny_graph, evaluator=ev)
        for name, result in again.items():
            assert_results_identical(serial_results[name], result, f"serial-explicit/{name}")


class TestMixCandidate:
    def test_flat_vector_mix_matches_tensordot(self, gcn_pool):
        flats, params = stack_flat_states(gcn_pool.states)
        weights = np.linspace(0.1, 0.4, len(gcn_pool))
        mixed = mix_candidate(flats, params, weights)
        for name in gcn_pool.param_names():
            stack = np.stack([sd[name] for sd in gcn_pool.states])
            np.testing.assert_allclose(
                mixed[name], np.tensordot(weights, stack, axes=(0, 0)), atol=1e-12
            )

    def test_basis_vector_reproduces_ingredient_bitwise(self, gcn_pool):
        flats, params = stack_flat_states(gcn_pool.states)
        e = np.zeros(len(gcn_pool))
        e[1] = 1.0
        mixed = mix_candidate(flats, params, e)
        for name, value in gcn_pool.states[1].items():
            np.testing.assert_array_equal(mixed[name], value)

    def test_grouped_mix_matches_per_group_tensordot(self, gcn_pool):
        flats, params = stack_flat_states(gcn_pool.states)
        names = gcn_pool.param_names()
        group_ids, group_names = layer_groups(names, "layer")
        rng = np.random.default_rng(0)
        weights = rng.random((len(gcn_pool), len(group_names)))
        mixed = mix_candidate(flats, params, weights, groups=group_ids)
        for name, g in zip(names, group_ids):
            stack = np.stack([sd[name] for sd in gcn_pool.states])
            np.testing.assert_allclose(
                mixed[name], np.tensordot(weights[:, int(g)], stack, axes=(0, 0)), atol=1e-12
            )

    def test_grouped_mix_requires_groups(self, gcn_pool):
        flats, params = stack_flat_states(gcn_pool.states)
        with pytest.raises(ValueError, match="groups"):
            mix_candidate(flats, params, np.ones((len(gcn_pool), 2)))

    def test_wrong_weight_length_rejected(self, gcn_pool):
        flats, params = stack_flat_states(gcn_pool.states)
        with pytest.raises(ValueError, match="pool size"):
            mix_candidate(flats, params, np.ones(len(gcn_pool) + 1))


class TestCandidateValidation:
    def test_weights_xor_state(self):
        with pytest.raises(ValueError, match="exactly one"):
            Candidate()
        with pytest.raises(ValueError, match="exactly one"):
            Candidate(weights=np.ones(2), state={"w": np.ones(2)})

    def test_unknown_split_rejected(self):
        with pytest.raises(ValueError, match="split"):
            Candidate(weights=np.ones(2), split="holdout")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            Candidate(weights=np.ones(2), kind="loss")

    def test_acc_needs_node_selection(self):
        with pytest.raises(ValueError, match="split or an indices"):
            Candidate(weights=np.ones(2), split=None)

    def test_grouped_weights_need_groups(self):
        with pytest.raises(ValueError, match="groups"):
            Candidate(weights=np.ones((2, 3)))


class TestEvaluatorApi:
    def test_pool_size_mismatch_rejected(self, gcn_pool, tiny_graph):
        from repro.soup import uniform_soup

        with make_evaluator(gcn_pool, tiny_graph) as ev:
            sub = gcn_pool.subset([0, 1])
            with pytest.raises(ValueError, match="ingredients"):
                uniform_soup(sub, tiny_graph, evaluator=ev)

    def test_graph_mismatch_rejected(self, gcn_pool, tiny_graph, small_graph):
        from repro.soup import uniform_soup

        with make_evaluator(gcn_pool, tiny_graph) as ev:
            with pytest.raises(ValueError, match="different graph"):
                uniform_soup(gcn_pool, small_graph, evaluator=ev)

    def test_wrong_candidate_width_rejected(self, gcn_pool, tiny_graph):
        with make_evaluator(gcn_pool, tiny_graph) as ev:
            with pytest.raises(ValueError, match="evaluator pool holds"):
                ev.evaluate([Candidate(weights=np.ones(len(gcn_pool) + 2))])

    def test_closed_evaluator_rejects_batches(self, gcn_pool, tiny_graph):
        ev = make_evaluator(gcn_pool, tiny_graph)
        ev.close()
        with pytest.raises(RuntimeError, match="closed"):
            ev.evaluate([Candidate(weights=np.full(len(gcn_pool), 0.25))])

    def test_unknown_backend_rejected(self, gcn_pool, tiny_graph):
        with pytest.raises(ValueError, match="soup executor"):
            make_evaluator(gcn_pool, tiny_graph, backend="mpi")

    def test_logits_kind_matches_eval_logits(self, gcn_pool, tiny_graph):
        from repro.train import evaluate_logits

        model = gcn_pool.make_model()
        model.load_state_dict(gcn_pool.states[0])
        expected = evaluate_logits(model, tiny_graph)
        e = np.zeros(len(gcn_pool))
        e[0] = 1.0
        with make_evaluator(gcn_pool, tiny_graph) as ev:
            full = ev.evaluate([Candidate(weights=e, split=None, kind="logits")])[0]
            val_only = ev.evaluate([Candidate(weights=e, split="val", kind="logits")])[0]
        np.testing.assert_array_equal(full, expected)
        np.testing.assert_array_equal(val_only, expected[tiny_graph.val_idx])

    def test_custom_indices_accuracy(self, gcn_pool, tiny_graph):
        idx = tiny_graph.val_idx[:5]
        weights = np.full(len(gcn_pool), 1.0 / len(gcn_pool))
        with make_evaluator(gcn_pool, tiny_graph) as ev:
            acc = ev.evaluate([Candidate(weights=weights, indices=idx)])[0]
            state = ev.mix(weights)
        model = gcn_pool.make_model()
        from repro.train import evaluate_logits

        model.load_state_dict(state)
        logits = evaluate_logits(model, tiny_graph)
        expected = float(np.mean(logits[idx].argmax(axis=1) == tiny_graph.labels[idx]))
        assert acc == expected


class TestSubsetEvaluator:
    def test_subset_matches_standalone(self, gcn_pool, tiny_graph):
        """A rotation view over the shared evaluator scores a sub-pool's
        candidates exactly like an evaluator built on the sub-pool."""
        from repro.soup import gis_soup

        keep = [0, 2, 3]
        sub = gcn_pool.subset(keep)
        standalone = gis_soup(sub, tiny_graph, granularity=4)
        with make_evaluator(gcn_pool, tiny_graph) as shared:
            view = shared.subset(keep)
            through_view = gis_soup(sub, tiny_graph, granularity=4, evaluator=view)
        for name in standalone.state_dict:
            np.testing.assert_array_equal(
                standalone.state_dict[name], through_view.state_dict[name]
            )
        assert standalone.val_acc == through_view.val_acc

    def test_subset_indices_validated(self, gcn_pool, tiny_graph):
        with make_evaluator(gcn_pool, tiny_graph) as ev:
            with pytest.raises(ValueError, match="out of range"):
                ev.subset([0, len(gcn_pool)])
            with pytest.raises(ValueError, match="unique"):
                ev.subset([0, 0])

    def test_view_close_leaves_base_usable(self, gcn_pool, tiny_graph):
        with make_evaluator(gcn_pool, tiny_graph) as ev:
            view = ev.subset([0, 1])
            view.close()
            acc = ev.evaluate([Candidate(weights=np.full(len(gcn_pool), 0.25))])[0]
            assert 0.0 <= acc <= 1.0


class TestRunnerIntegration:
    def test_run_cell_parallel_souping_matches_serial(self, tiny_graph, gcn_pool):
        """The runner's shared-evaluator concurrent dispatch returns the
        same per-method statistics as the serial path."""
        from repro.experiments import make_spec
        from repro.experiments.runner import run_cell

        spec = make_spec("flickr", "gcn", n_soups=2)
        kw = dict(methods=("us", "greedy"), graph=tiny_graph, pool=gcn_pool, n_soups=2)
        serial = run_cell(spec, **kw)
        threaded = run_cell(spec, soup_executor="thread", soup_workers=3, **kw)
        for method in ("us", "greedy"):
            assert serial.stats[method].test_accs == threaded.stats[method].test_accs
            assert serial.stats[method].val_accs == threaded.stats[method].val_accs


class TestModelOwnership:
    """Satellite: souping and eval_state never corrupt caller-held models."""

    def test_eval_state_restores_prior_parameters(self, gcn_pool, tiny_graph):
        model = gcn_pool.make_model()
        model.load_state_dict(gcn_pool.states[0])
        before = model.state_dict()
        eval_state(model, gcn_pool.states[1], tiny_graph, "val")
        after = model.state_dict()
        for name in before:
            np.testing.assert_array_equal(before[name], after[name])

    def test_eval_state_restore_optout(self, gcn_pool, tiny_graph):
        model = gcn_pool.make_model()
        model.load_state_dict(gcn_pool.states[0])
        eval_state(model, gcn_pool.states[1], tiny_graph, "val", restore=False)
        after = model.state_dict()
        for name, value in gcn_pool.states[1].items():
            np.testing.assert_array_equal(after[name], value)

    def test_souping_leaves_caller_model_untouched(self, gcn_pool, tiny_graph):
        """Regression: a model the caller holds (same architecture, loaded
        with an ingredient) survives a full souping sweep bit-for-bit."""
        model = gcn_pool.make_model()
        model.load_state_dict(gcn_pool.states[2])
        before = model.state_dict()
        run_all_methods(gcn_pool, tiny_graph)
        after = model.state_dict()
        for name in before:
            np.testing.assert_array_equal(before[name], after[name])
