"""State-dict algebra: the arithmetic underneath every souping method."""

from __future__ import annotations

from collections import OrderedDict

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.soup import (
    GRANULARITIES,
    average,
    flatten_state,
    interpolate,
    layer_groups,
    state_distance,
    unflatten_state,
    weighted_sum,
)


def make_state(rng, scale=1.0):
    return OrderedDict(
        [
            ("convs.0.linear.weight", rng.normal(size=(4, 8)) * scale),
            ("convs.0.linear.bias", rng.normal(size=8) * scale),
            ("convs.1.linear.weight", rng.normal(size=(8, 3)) * scale),
            ("convs.1.linear.bias", rng.normal(size=3) * scale),
        ]
    )


class TestAverage:
    def test_average_of_identical_is_identity(self, rng):
        sd = make_state(rng)
        out = average([sd, sd, sd])
        for name in sd:
            np.testing.assert_allclose(out[name], sd[name])

    def test_average_two(self, rng):
        a, b = make_state(rng), make_state(rng)
        out = average([a, b])
        for name in a:
            np.testing.assert_allclose(out[name], (a[name] + b[name]) / 2)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            average([])

    def test_mismatched_names_rejected(self, rng):
        a, b = make_state(rng), make_state(rng)
        b["extra"] = np.zeros(1)
        with pytest.raises(KeyError):
            average([a, b])


class TestInterpolate:
    def test_alpha_zero_keeps_first(self, rng):
        a, b = make_state(rng), make_state(rng)
        out = interpolate(a, b, 0.0)
        for name in a:
            np.testing.assert_allclose(out[name], a[name])

    def test_alpha_one_gives_second(self, rng):
        a, b = make_state(rng), make_state(rng)
        out = interpolate(a, b, 1.0)
        for name in a:
            np.testing.assert_allclose(out[name], b[name])

    def test_midpoint_equals_average(self, rng):
        a, b = make_state(rng), make_state(rng)
        mid = interpolate(a, b, 0.5)
        avg = average([a, b])
        for name in a:
            np.testing.assert_allclose(mid[name], avg[name])

    def test_mismatched_keys_rejected(self, rng):
        a, b = make_state(rng), make_state(rng)
        del b["convs.0.linear.bias"]
        with pytest.raises(KeyError):
            interpolate(a, b, 0.5)

    @settings(max_examples=25, deadline=None)
    @given(alpha=st.floats(0.0, 1.0), seed=st.integers(0, 2**31 - 1))
    def test_property_self_interpolation_identity(self, alpha, seed):
        """interpolate(a, a, t) == a for any t."""
        rng = np.random.default_rng(seed)
        a = make_state(rng)
        out = interpolate(a, a, alpha)
        for name in a:
            np.testing.assert_allclose(out[name], a[name], atol=1e-12)

    @settings(max_examples=25, deadline=None)
    @given(alpha=st.floats(0.0, 1.0), seed=st.integers(0, 2**31 - 1))
    def test_property_interpolation_symmetry(self, alpha, seed):
        """interpolate(a, b, t) == interpolate(b, a, 1-t)."""
        rng = np.random.default_rng(seed)
        a, b = make_state(rng), make_state(rng)
        x = interpolate(a, b, alpha)
        y = interpolate(b, a, 1.0 - alpha)
        for name in a:
            np.testing.assert_allclose(x[name], y[name], atol=1e-10)


class TestWeightedSum:
    def test_uniform_weights_equal_average(self, rng):
        states = [make_state(rng) for _ in range(4)]
        ws = weighted_sum(states, np.full(4, 0.25))
        avg = average(states)
        for name in avg:
            np.testing.assert_allclose(ws[name], avg[name])

    def test_one_hot_selects(self, rng):
        states = [make_state(rng) for _ in range(3)]
        out = weighted_sum(states, np.array([0.0, 1.0, 0.0]))
        for name in out:
            np.testing.assert_allclose(out[name], states[1][name])

    def test_shape_validation(self, rng):
        with pytest.raises(ValueError):
            weighted_sum([make_state(rng)], np.ones(2))

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1))
    def test_property_linearity(self, seed):
        """weighted_sum is linear: w1+w2 combination == sum of parts."""
        rng = np.random.default_rng(seed)
        states = [make_state(rng) for _ in range(3)]
        w1 = rng.random(3)
        w2 = rng.random(3)
        combined = weighted_sum(states, w1 + w2)
        separate_1 = weighted_sum(states, w1)
        separate_2 = weighted_sum(states, w2)
        for name in combined:
            np.testing.assert_allclose(combined[name], separate_1[name] + separate_2[name], atol=1e-10)


class TestFlatten:
    def test_roundtrip(self, rng):
        sd = make_state(rng)
        vec, spec = flatten_state(sd)
        back = unflatten_state(vec, spec)
        for name in sd:
            np.testing.assert_array_equal(back[name], sd[name])

    def test_vector_length(self, rng):
        sd = make_state(rng)
        vec, _ = flatten_state(sd)
        assert len(vec) == sum(v.size for v in sd.values())

    def test_wrong_length_rejected(self, rng):
        _, spec = flatten_state(make_state(rng))
        with pytest.raises(ValueError):
            unflatten_state(np.zeros(3), spec)

    def test_state_distance_zero_for_self(self, rng):
        sd = make_state(rng)
        assert state_distance(sd, sd) == 0.0

    def test_state_distance_symmetric(self, rng):
        a, b = make_state(rng), make_state(rng)
        assert state_distance(a, b) == pytest.approx(state_distance(b, a))

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1))
    def test_property_flatten_preserves_norm(self, seed):
        rng = np.random.default_rng(seed)
        sd = make_state(rng)
        vec, _ = flatten_state(sd)
        direct = np.sqrt(sum(np.sum(v**2) for v in sd.values()))
        np.testing.assert_allclose(np.linalg.norm(vec), direct)


class TestLayerGroups:
    NAMES = [
        "convs.0.linear.weight",
        "convs.0.linear.bias",
        "convs.0.attn_src",
        "convs.1.linear.weight",
        "convs.1.linear.bias",
    ]

    def test_model_granularity_single_group(self):
        groups, names = layer_groups(self.NAMES, "model")
        assert len(names) == 1
        assert np.all(groups == 0)

    def test_layer_granularity_groups_by_conv(self):
        groups, names = layer_groups(self.NAMES, "layer")
        assert names == ["convs.0", "convs.1"]
        np.testing.assert_array_equal(groups, [0, 0, 0, 1, 1])

    def test_module_granularity_splits_attention(self):
        groups, names = layer_groups(self.NAMES, "module")
        # attn_src lives directly on convs.0, not under .linear
        assert "convs.0.linear" in names and "convs.0" in names

    def test_tensor_granularity_one_per_name(self):
        groups, names = layer_groups(self.NAMES, "tensor")
        assert len(names) == len(self.NAMES)
        assert len(set(groups.tolist())) == len(self.NAMES)

    def test_unknown_granularity(self):
        with pytest.raises(ValueError):
            layer_groups(self.NAMES, "per-neuron")

    def test_all_granularities_cover_all_params(self):
        for g in GRANULARITIES:
            groups, names = layer_groups(self.NAMES, g)
            assert len(groups) == len(self.NAMES)
            assert groups.max() == len(names) - 1

    def test_non_conv_names_fall_back(self):
        groups, names = layer_groups(["layers.0.weight", "head.weight", "scale"], "layer")
        assert "layers.0" in names and "head" in names and "scale" in names
