"""Telemetry through the full stack: determinism, aggregation, traces.

The acceptance contract under test: enabling telemetry must not perturb
a single bit of either phase's results in any execution mode (serial ×
thread × process-pipe × process-tcp), worker snapshots must aggregate
driver-side over both transports (including across a kill-fault
respawn), and the Chrome trace export must carry one track per
worker/node.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.distributed import ClusterService, FaultPlan, train_ingredients
from repro.distributed.cluster import ClusterError, PipeTransport
from repro.soup import gis_soup, make_evaluator
from repro.telemetry import RunReport, build_report, metrics, write_trace

from test_cluster import KW, assert_pools_identical, assert_results_identical

#: mode -> (executor/backend, transport) for the four execution modes
MODES = {
    "serial": ("serial", None),
    "thread": ("thread", None),
    "process-pipe": ("process", "pipe"),
    "process-tcp": ("process", "tcp"),
}


@pytest.fixture(autouse=True)
def clean_global_registry():
    metrics.reset()
    metrics.set_enabled(False)
    yield
    metrics.reset()
    metrics.set_enabled(False)


def _train(graph, mode: str, telemetry: bool):
    executor, transport = MODES[mode]
    kwargs = dict(executor=executor, num_workers=2)
    if transport is not None:
        kwargs["transport"] = transport
    metrics.reset()
    metrics.set_enabled(telemetry)
    try:
        return train_ingredients("gcn", graph, 3, **kwargs, **KW)
    finally:
        metrics.set_enabled(False)


def _soup(pool, graph, mode: str, telemetry: bool):
    backend, transport = MODES[mode]
    metrics.reset()
    metrics.set_enabled(telemetry)
    try:
        if backend == "serial":
            return gis_soup(pool, graph, granularity=5)
        kwargs = dict(backend=backend, num_workers=2)
        if transport is not None:
            kwargs["transport"] = transport
        with make_evaluator(pool, graph, **kwargs) as ev:
            return gis_soup(pool, graph, granularity=5, evaluator=ev)
    finally:
        metrics.set_enabled(False)


class TestDeterminismWithTelemetry:
    """Enabled vs disabled runs are bit-identical in every mode."""

    @pytest.mark.parametrize("mode", list(MODES))
    def test_phase1_bit_identical(self, tiny_graph, mode):
        baseline = _train(tiny_graph, mode, telemetry=False)
        instrumented = _train(tiny_graph, mode, telemetry=True)
        assert_pools_identical(baseline, instrumented)
        # the report rides on the pool without entering its identity, and
        # sees every epoch whatever the mode: 3 ingredients x 4 epochs
        assert baseline.telemetry is None
        report = RunReport.from_dict(instrumented.telemetry)
        assert report.histogram_total("train.epoch_step_s")["count"] == 12

    @pytest.mark.parametrize("mode", list(MODES))
    def test_phase2_bit_identical(self, gcn_pool, tiny_graph, mode):
        baseline = _soup(gcn_pool, tiny_graph, mode, telemetry=False)
        instrumented = _soup(gcn_pool, tiny_graph, mode, telemetry=True)
        assert_results_identical(baseline, instrumented)
        assert metrics.counter_value("soup.candidates") > 0

    def test_pool_cache_round_trip_drops_telemetry(self, tiny_graph, tmp_path):
        """The on-disk pool format predates telemetry and must not grow
        it: a cached pool reloads bit-identically with telemetry=None."""
        from repro.experiments.cache import load_pool, save_pool

        pool = _train(tiny_graph, "serial", telemetry=True)
        assert pool.telemetry is not None
        path = tmp_path / "pool.npz"
        save_pool(pool, path)
        loaded = load_pool(path)
        assert_pools_identical(pool, loaded)
        assert loaded.telemetry is None


class TestSnapshotAggregation:
    """Worker registries reach the driver over both transports."""

    def test_pipe_workers_ship_snapshots(self, tiny_graph):
        _train(tiny_graph, "process-pipe", telemetry=True)
        sources = metrics.sources()
        assert sources and all(label.startswith("pipe:w") for label in sources)
        for snap in sources.values():
            assert snap["meta"]["role"] == "ingredients"
        # every task's span and completion reached the driver
        task_spans = [
            s for snap in sources.values() for s in snap["spans"]
            if s[0].startswith("task:")
        ]
        assert len(task_spans) == 3
        done = sum(s["counters"].get("worker.tasks_done", 0) for s in sources.values())
        assert done == 3

    def test_tcp_workers_ship_snapshots(self, tiny_graph):
        _train(tiny_graph, "process-tcp", telemetry=True)
        sources = metrics.sources()
        assert sources and all(label.startswith("tcp:w") for label in sources)
        for snap in sources.values():
            assert snap["counters"]["transport.frames_sent"] > 0
        task_spans = [
            s for snap in sources.values() for s in snap["spans"]
            if s[0].startswith("task:")
        ]
        assert len(task_spans) == 3
        # driver-side service metrics recorded alongside
        assert metrics.counter_value("cluster.tasks_done") == 3
        snap = metrics.snapshot()
        assert snap["histograms"]["cluster.claim_latency_s"]["count"] == 3
        assert snap["histograms"]["cluster.queue_wait_s"]["count"] == 3
        assert any(n.startswith("cluster.utilization.tcp:w") for n in snap["gauges"])

    def test_tcp_aggregation_survives_kill_fault_respawn(self, tiny_graph):
        """A hard-killed tcp worker loses its connection mid-task; the
        respawned replacement must ship snapshots under its own label and
        the driver must have counted the recovery. One worker makes the
        respawn mandatory — no survivor can absorb the backlog."""
        metrics.reset()
        metrics.set_enabled(True)
        try:
            pool = train_ingredients(
                "gcn", tiny_graph, 3, executor="process", transport="tcp",
                num_workers=1, fault_plan=FaultPlan(failures={0: 1}, kill=True), **KW,
            )
        finally:
            metrics.set_enabled(False)
        respawns = metrics.counter_value("cluster.respawns")
        lost = metrics.counter_value("cluster.lost_tasks")
        sources = metrics.sources()
        reference = _train(tiny_graph, "serial", telemetry=False)
        assert_pools_identical(reference, pool)
        assert respawns >= 1
        assert lost >= 1
        # the respawned replacement (w1) reported in under its own label;
        # the killed w0 may or may not have shipped a snapshot first
        assert any(label.startswith("tcp:w1") for label in sources)


class TestTraceExport:
    def test_one_track_per_worker(self, tiny_graph, tmp_path):
        _train(tiny_graph, "process-pipe", telemetry=True)
        report = build_report(command="test")
        path = tmp_path / "trace.json"
        write_trace(report, path)
        trace = json.loads(path.read_text())
        assert set(trace) == {"traceEvents", "displayTimeUnit"}
        names = {
            e["pid"]: e["args"]["name"]
            for e in trace["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        # one track per snapshot source: the driver plus every worker
        # that reported, each under its own pid
        assert names[0] == "driver"
        worker_pids = {pid for pid, name in names.items() if name.startswith("pipe:w")}
        assert len(names) == 1 + len(worker_pids) and worker_pids
        for event in trace["traceEvents"]:
            assert {"name", "ph", "pid", "tid"} <= set(event)
            if event["ph"] == "X":
                assert event["ts"] >= 0.0 and event["dur"] >= 0.0
        # worker tracks carry the per-task spans, one per ingredient
        task_events = [
            e for e in trace["traceEvents"]
            if e["ph"] == "X" and e["pid"] in worker_pids and e["name"].startswith("task:")
        ]
        assert len(task_events) == 3


class TestWorkerIdentityOnFailure:
    def test_unexpected_worker_error_names_the_worker(self, gcn_pool, tiny_graph):
        """An exception escaping a worker's task (not a recognised fault)
        must re-raise on the driver with the worker's identity: transport
        label and role."""
        from repro.distributed.eval_service import EvalTask, stack_flat_states
        from repro.distributed.ingredients import _graph_to_payload

        flats, params = stack_flat_states(gcn_pool.states)
        context = {
            "graph_ref": {"kind": "arrays", "payload": _graph_to_payload(tiny_graph)},
            "pool_ref": {"kind": "arrays", "flats": flats, "params": params},
            "model_config": dict(gcn_pool.model_config),
        }
        service = ClusterService(PipeTransport("eval", context, width=1))
        try:
            with pytest.raises(
                ClusterError,
                match=r"worker pipe:w0 .*\(role 'eval'\) raised unexpectedly",
            ):
                # a wrong-length weight vector explodes inside the worker
                service.run([0], lambda key, attempt: EvalTask(weights=np.ones(len(gcn_pool) + 5)))
        finally:
            service.close()
