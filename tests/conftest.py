"""Shared fixtures: tiny graphs and pre-trained ingredient pools.

Everything here is deliberately small (hundreds of nodes, seconds of
training) — the heavy, paper-scale runs live in ``benchmarks/``. The
session-scoped pools are trained once and reused by every souping test.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import GeneratorConfig, homophilous_graph
from repro.distributed import train_ingredients
from repro.train import TrainConfig


TINY_CFG = GeneratorConfig(
    num_nodes=160,
    num_classes=4,
    avg_degree=8.0,
    homophily=0.7,
    feature_dim=12,
    feature_noise=1.0,
    split=(0.5, 0.25, 0.25),
    name="tiny",
)

SMALL_CFG = GeneratorConfig(
    num_nodes=400,
    num_classes=5,
    avg_degree=10.0,
    homophily=0.6,
    feature_dim=16,
    feature_noise=1.5,
    split=(0.5, 0.25, 0.25),
    name="small",
)


@pytest.fixture(scope="session")
def tiny_graph():
    """160-node homophilous graph; fast enough for per-test training."""
    return homophilous_graph(TINY_CFG, seed=7)


@pytest.fixture(scope="session")
def small_graph():
    """400-node graph for partitioning / souping integration tests."""
    return homophilous_graph(SMALL_CFG, seed=11)


@pytest.fixture(scope="session")
def gcn_pool(tiny_graph):
    """Four GCN ingredients on the tiny graph (shared init, varied seeds)."""
    return train_ingredients(
        "gcn",
        tiny_graph,
        n_ingredients=4,
        train_cfg=TrainConfig(epochs=25, lr=0.02),
        base_seed=3,
        hidden_dim=16,
        epoch_jitter=5,
    )


@pytest.fixture(scope="session")
def gat_pool(tiny_graph):
    """Three GAT ingredients (exercises the attention souping path)."""
    return train_ingredients(
        "gat",
        tiny_graph,
        n_ingredients=3,
        train_cfg=TrainConfig(epochs=15, lr=0.02),
        base_seed=5,
        hidden_dim=8,
        num_heads=2,
    )


@pytest.fixture(scope="session")
def small_pool(small_graph):
    """Five GCN ingredients on the 400-node graph (PLS-scale tests)."""
    return train_ingredients(
        "gcn",
        small_graph,
        n_ingredients=5,
        train_cfg=TrainConfig(epochs=25, lr=0.02),
        base_seed=9,
        hidden_dim=16,
        epoch_jitter=8,
    )


@pytest.fixture
def rng():
    return np.random.default_rng(1234)
