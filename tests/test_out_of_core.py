"""Out-of-core smoke: train an ingredient on a store whose feature matrix
is >=10x the memory budget, and prove peak RSS growth stays under the cap.

The store is built chunk-wise by the parent (which therefore never holds
the full feature matrix either); a fresh subprocess opens it under
``$REPRO_MEMORY_BUDGET`` and trains, measuring ``VmHWM`` growth from
``/proc/self/status``. ``VmHWM`` is the kernel's high-water RSS mark, so
the delta bounds every transient peak during training, not just the
final resident size.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.graph import GraphStore
from repro.graph.csr import edges_to_csr

NUM_NODES = 350_000
FEATURE_DIM = 128
NUM_CLASSES = 7
BUDGET = 32 * 1024**2
FEATURE_BYTES = NUM_NODES * FEATURE_DIM * 8

_CHILD = """
import json, os
import numpy as np
from repro.graph import GraphStore
from repro.models import build_model
from repro.train import TrainConfig, train_model

def vmhwm():
    with open("/proc/self/status") as fh:
        for line in fh:
            if line.startswith("VmHWM:"):
                return int(line.split()[1]) * 1024
    raise RuntimeError("no VmHWM in /proc/self/status")

store = GraphStore(os.environ["STORE_PATH"])  # budget comes from the env
assert store.memory_budget == int(os.environ["EXPECT_BUDGET"])
graph = store.graph()
model = build_model(
    "sage", graph.feature_dim, graph.num_classes, hidden_dim=16, num_layers=2, seed=0
)
baseline = vmhwm()
cfg = TrainConfig(
    epochs=2, minibatch=True, batch_size=128, fanout=3,
    prefetch_depth=2, sample_workers=2,
)
result = train_model(model, graph, cfg, seed=3)
print(json.dumps({
    "baseline": baseline,
    "final": vmhwm(),
    "val_acc": result.val_acc,
    "test_acc": result.test_acc,
}))
"""


def _build_store(path: Path) -> None:
    n = NUM_NODES
    base = np.arange(n, dtype=np.int64)
    src = np.concatenate([(base + 1) % n, (base - 1) % n, (base + 7) % n, (base - 7) % n])
    dst = np.concatenate([base, base, base, base])
    csr = edges_to_csr(src, dst, n, dedup=False)

    rng = np.random.default_rng(0)
    labels = rng.integers(0, NUM_CLASSES, size=n)
    order = rng.permutation(n)
    train_mask = np.zeros(n, dtype=bool)
    val_mask = np.zeros(n, dtype=bool)
    test_mask = np.zeros(n, dtype=bool)
    train_mask[order[:400]] = True
    val_mask[order[400:550]] = True
    test_mask[order[550:700]] = True

    def feature_chunks():
        chunk_rng = np.random.default_rng(1)
        for start in range(0, n, 16384):
            rows = min(16384, n - start)
            yield chunk_rng.standard_normal((rows, FEATURE_DIM))

    GraphStore.write(
        path,
        csr=csr,
        features=feature_chunks(),
        labels=labels,
        train_mask=train_mask,
        val_mask=val_mask,
        test_mask=test_mask,
        num_classes=NUM_CLASSES,
        name="ooc-smoke",
        feature_dim=FEATURE_DIM,
    )


@pytest.mark.skipif(sys.platform != "linux", reason="needs /proc/self/status VmHWM")
def test_out_of_core_training_stays_under_budget(tmp_path):
    assert FEATURE_BYTES >= 10 * BUDGET  # the premise: features dwarf the cap
    store_path = tmp_path / "store"
    _build_store(store_path)

    env = dict(os.environ)
    env["PYTHONPATH"] = str(Path(__file__).resolve().parents[1] / "src")
    env["STORE_PATH"] = str(store_path)
    env["REPRO_MEMORY_BUDGET"] = str(BUDGET)
    env["EXPECT_BUDGET"] = str(BUDGET)
    proc = subprocess.run(
        [sys.executable, "-c", _CHILD], env=env, capture_output=True, text=True, timeout=600
    )
    assert proc.returncode == 0, proc.stderr
    report = json.loads(proc.stdout.strip().splitlines()[-1])

    growth = report["final"] - report["baseline"]
    assert growth < BUDGET, (
        f"training grew peak RSS by {growth} bytes, over the {BUDGET}-byte budget "
        f"(features on disk: {FEATURE_BYTES} bytes)"
    )
    # training actually ran end to end
    assert 0.0 <= report["val_acc"] <= 1.0
    assert 0.0 <= report["test_acc"] <= 1.0
