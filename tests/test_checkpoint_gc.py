"""Checkpoint compaction/GC: epoch-snapshot history and its retention.

The satellite contract: ``CheckpointStore.gc(keep_last=K)`` prunes
rolling epoch snapshots beyond K per ingredient and runs on every
driver-side store open, so a big grid of interrupted runs cannot
accumulate stale snapshots.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.distributed import CheckpointStore, train_ingredients
from repro.train import EpochTrainState, TrainConfig


def _epoch_state(rng, epoch: int) -> EpochTrainState:
    return EpochTrainState(
        epoch=epoch,
        model_state={"w": rng.normal(size=(3, 2))},
        optimizer_state={"lr": 0.1, "velocities": [rng.normal(size=(3, 2)), None]},
        scheduler_last_epoch=epoch,
        rng_state="stream-state",
        best_val=0.5,
        best_state={"w": rng.normal(size=(3, 2))},
        best_epoch=max(1, epoch - 1),
        patience_left=None,
        history=[(epoch, 0.1, 0.5)],
        elapsed=1.0,
    )


class TestEpochHistoryRetention:
    def test_default_keeps_single_rolling_file(self, tmp_path, rng):
        store = CheckpointStore(tmp_path, "fp")
        for epoch in (1, 2, 3):
            store.save_epoch(0, _epoch_state(rng, epoch))
        assert store.epoch_path(0).exists()
        assert list(tmp_path.glob("*/ingredient-*.epoch-*.npz")) == []

    def test_keep_epochs_retains_history_window(self, tmp_path, rng):
        store = CheckpointStore(tmp_path, "fp", keep_epochs=3)
        for epoch in range(1, 7):
            store.save_epoch(0, _epoch_state(rng, epoch))
        history = sorted(p.name for p in tmp_path.glob("*/ingredient-00000.epoch-*.npz"))
        # rolling latest (epoch 6) + the 2 newest history entries
        assert history == ["ingredient-00000.epoch-00004.npz", "ingredient-00000.epoch-00005.npz"]
        assert store.load_epoch(0).epoch == 6

    def test_corrupt_rolling_file_falls_back_to_history(self, tmp_path, rng):
        store = CheckpointStore(tmp_path, "fp", keep_epochs=2)
        store.save_epoch(0, _epoch_state(rng, 4))
        store.save_epoch(0, _epoch_state(rng, 5))
        store.epoch_path(0).write_bytes(b"torn mid-write")
        # the torn rolling write costs one snapshot window, not the whole
        # ingredient: the previous snapshot (epoch 4) is still loadable
        recovered = store.load_epoch(0)
        assert recovered is not None and recovered.epoch == 4

    def test_clear_epoch_drops_history_too(self, tmp_path, rng):
        store = CheckpointStore(tmp_path, "fp", keep_epochs=4)
        for epoch in (1, 2, 3):
            store.save_epoch(2, _epoch_state(rng, epoch))
        store.clear_epoch(2)
        assert list(tmp_path.glob("*/ingredient-00002.epoch*")) == []

    def test_len_counts_only_finished_ingredients(self, tmp_path, rng):
        from repro.train import TrainResult

        store = CheckpointStore(tmp_path, "fp", keep_epochs=3)
        store.save(
            0,
            TrainResult(
                state_dict={"w": rng.normal(size=(2,))},
                val_acc=0.5, test_acc=0.4, train_time=1.0, epochs_run=3,
            ),
        )
        for epoch in (1, 2, 3):
            store.save_epoch(1, _epoch_state(rng, epoch))
        assert len(store) == 1


class TestGcOnOpen:
    def test_big_stale_grid_is_pruned_on_open(self, tmp_path, rng):
        """The satellite scenario: a grid of interrupted runs left many
        epoch snapshots per ingredient; reopening the store compacts each
        ingredient's history to the retention window."""
        writer = CheckpointStore(tmp_path, "fp", keep_epochs=99)
        for index in range(6):
            for epoch in range(1, 9):
                writer.save_epoch(index, _epoch_state(rng, epoch))
        stale = list(tmp_path.glob("*/ingredient-*.epoch-*.npz"))
        assert len(stale) == 6 * 7  # 7 history entries beside each rolling file

        reopened = CheckpointStore(tmp_path, "fp", keep_epochs=2)
        remaining = sorted(p.name for p in tmp_path.glob("*/ingredient-*.epoch-*.npz"))
        assert remaining == [f"ingredient-{i:05d}.epoch-00007.npz" for i in range(6)]
        # the rolling snapshot (the resume point) is untouched
        for index in range(6):
            assert reopened.epoch_path(index).exists()
            assert reopened.load_epoch(index).epoch == 8

    def test_gc_keep_last_one_drops_all_history(self, tmp_path, rng):
        writer = CheckpointStore(tmp_path, "fp", keep_epochs=5)
        for epoch in range(1, 6):
            writer.save_epoch(0, _epoch_state(rng, epoch))
        reopened = CheckpointStore(tmp_path, "fp")  # default policy: keep 1
        assert list(tmp_path.glob("*/ingredient-*.epoch-*.npz")) == []
        assert reopened.load_epoch(0).epoch == 5

    def test_gc_returns_removed_count(self, tmp_path, rng):
        store = CheckpointStore(tmp_path, "fp", keep_epochs=10)
        for epoch in range(1, 5):
            store.save_epoch(0, _epoch_state(rng, epoch))
        assert store.gc(keep_last=2) == 2  # epochs 1 and 2 pruned

    def test_gc_validation(self, tmp_path):
        store = CheckpointStore(tmp_path, "fp")
        with pytest.raises(ValueError, match="keep_last"):
            store.gc(keep_last=0)
        with pytest.raises(ValueError, match="keep_epochs"):
            CheckpointStore(tmp_path, "fp", keep_epochs=0)

    def test_worker_handle_does_not_gc(self, tmp_path, rng):
        """Workers open with sweep_stale=False: a GC concurrent with live
        writers could race an in-flight snapshot rotation."""
        writer = CheckpointStore(tmp_path, "fp", keep_epochs=9)
        for epoch in range(1, 5):
            writer.save_epoch(0, _epoch_state(rng, epoch))
        CheckpointStore(tmp_path, "fp", sweep_stale=False)  # worker-style open
        assert len(list(tmp_path.glob("*/ingredient-*.epoch-*.npz"))) == 3


class TestTrainIngredientsKeepKnob:
    def test_checkpoint_keep_threads_through(self, tiny_graph, tmp_path):
        kw = dict(train_cfg=TrainConfig(epochs=4, lr=0.05), base_seed=3, hidden_dim=8)
        pool = train_ingredients(
            "gcn", tiny_graph, 2, executor="serial",
            checkpoint_dir=tmp_path, checkpoint_every=1, checkpoint_keep=3, **kw,
        )
        assert len(pool) == 2
        # clean finish: snapshots (rolling + history) are cleared per task
        assert list(tmp_path.glob("*/ingredient-*.epoch*")) == []

    def test_invalid_checkpoint_keep_rejected(self, tiny_graph):
        with pytest.raises(ValueError, match="checkpoint_keep"):
            train_ingredients(
                "gcn", tiny_graph, 1, checkpoint_dir="unused", checkpoint_keep=0,
                train_cfg=TrainConfig(epochs=2), hidden_dim=8,
            )

    def test_resumed_pool_bit_identical_with_history(self, tiny_graph, tmp_path):
        """keep_epochs > 1 must not disturb the resume determinism
        contract: interrupted run + resume == clean serial run."""
        from repro.distributed import FaultPlan, IngredientTrainingError

        kw = dict(train_cfg=TrainConfig(epochs=4, lr=0.05), base_seed=3, hidden_dim=8)
        clean = train_ingredients("gcn", tiny_graph, 2, executor="serial", **kw)
        with pytest.raises(IngredientTrainingError):
            train_ingredients(
                "gcn", tiny_graph, 2, executor="serial",
                checkpoint_dir=tmp_path, checkpoint_every=1, checkpoint_keep=3,
                fault_plan=FaultPlan(failures={1: 99}, after_epochs=2),
                max_retries=0, **kw,
            )
        resumed = train_ingredients(
            "gcn", tiny_graph, 2, executor="serial",
            checkpoint_dir=tmp_path, checkpoint_every=1, checkpoint_keep=3,
            resume=True, **kw,
        )
        for s1, s2 in zip(clean.states, resumed.states):
            for name in s1:
                np.testing.assert_array_equal(s1[name], s2[name])
