"""Learning-rate schedulers (cosine annealing is the paper's LS schedule)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.optim import (
    Adam,
    ConstantLR,
    CosineAnnealingLR,
    LinearWarmupLR,
    SGD,
    StepLR,
)
from repro.tensor import Tensor


def make_opt(lr=1.0):
    return SGD([Tensor(np.ones(1), requires_grad=True)], lr=lr)


class TestCosineAnnealing:
    def test_starts_at_base(self):
        opt = make_opt(lr=2.0)
        CosineAnnealingLR(opt, t_max=10)
        assert opt.lr == 2.0

    def test_half_period_half_lr(self):
        opt = make_opt(lr=1.0)
        sched = CosineAnnealingLR(opt, t_max=10)
        for _ in range(5):
            sched.step()
        np.testing.assert_allclose(opt.lr, 0.5, atol=1e-12)

    def test_ends_at_eta_min(self):
        opt = make_opt(lr=1.0)
        sched = CosineAnnealingLR(opt, t_max=8, eta_min=0.1)
        for _ in range(8):
            sched.step()
        np.testing.assert_allclose(opt.lr, 0.1, atol=1e-12)

    def test_clamps_after_t_max(self):
        opt = make_opt()
        sched = CosineAnnealingLR(opt, t_max=4)
        for _ in range(10):
            sched.step()
        np.testing.assert_allclose(opt.lr, 0.0, atol=1e-12)

    def test_monotone_decreasing(self):
        opt = make_opt()
        sched = CosineAnnealingLR(opt, t_max=20)
        values = []
        for _ in range(20):
            sched.step()
            values.append(opt.lr)
        assert all(b <= a + 1e-12 for a, b in zip(values, values[1:]))

    def test_matches_formula(self):
        opt = make_opt(lr=0.8)
        sched = CosineAnnealingLR(opt, t_max=7, eta_min=0.05)
        for t in range(1, 8):
            sched.step()
            expected = 0.05 + (0.8 - 0.05) * (1 + math.cos(math.pi * t / 7)) / 2
            np.testing.assert_allclose(opt.lr, expected, atol=1e-12)

    def test_invalid_tmax(self):
        with pytest.raises(ValueError):
            CosineAnnealingLR(make_opt(), t_max=0)


class TestOtherSchedulers:
    def test_constant(self):
        opt = make_opt(lr=0.3)
        sched = ConstantLR(opt)
        for _ in range(5):
            sched.step()
        assert opt.lr == 0.3

    def test_step_lr_decays(self):
        opt = make_opt(lr=1.0)
        sched = StepLR(opt, step_size=2, gamma=0.5)
        lrs = []
        for _ in range(6):
            sched.step()
            lrs.append(opt.lr)
        np.testing.assert_allclose(lrs, [1.0, 0.5, 0.5, 0.25, 0.25, 0.125])

    def test_step_lr_validation(self):
        with pytest.raises(ValueError):
            StepLR(make_opt(), step_size=0)

    def test_linear_warmup_ramp(self):
        opt = make_opt(lr=1.0)
        sched = LinearWarmupLR(opt, warmup=4)
        lrs = []
        for _ in range(6):
            sched.step()
            lrs.append(opt.lr)
        np.testing.assert_allclose(lrs, [0.25, 0.5, 0.75, 1.0, 1.0, 1.0])

    def test_linear_warmup_validation(self):
        with pytest.raises(ValueError):
            LinearWarmupLR(make_opt(), warmup=0)

    def test_scheduler_drives_real_optimizer(self):
        p = Tensor(np.array([10.0]), requires_grad=True)
        opt = Adam([p], lr=0.5)
        sched = CosineAnnealingLR(opt, t_max=50)
        for _ in range(50):
            p.grad = p.data.copy()
            opt.step()
            sched.step()
        assert abs(p.data[0]) < 1.0  # converged under the decaying schedule
        np.testing.assert_allclose(opt.lr, 0.0, atol=1e-12)
