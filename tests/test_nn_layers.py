"""Generic layers: Linear, Dropout, Sequential, activations."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import Dropout, ELU, Identity, LeakyReLU, Linear, ReLU, Sequential, Tanh
from repro.tensor import Tensor


class TestLinear:
    def test_output_shape(self, rng):
        layer = Linear(5, 3, rng)
        assert layer(Tensor(rng.normal(size=(7, 5)))).shape == (7, 3)

    def test_matches_manual_affine(self, rng):
        layer = Linear(4, 2, rng)
        x = rng.normal(size=(3, 4))
        expected = x @ layer.weight.data + layer.bias.data
        np.testing.assert_allclose(layer(Tensor(x)).data, expected)

    def test_no_bias(self, rng):
        layer = Linear(4, 2, rng, bias=False)
        names = [n for n, _ in layer.named_parameters()]
        assert names == ["weight"]
        x = rng.normal(size=(3, 4))
        np.testing.assert_allclose(layer(Tensor(x)).data, x @ layer.weight.data)

    def test_bias_starts_zero(self, rng):
        np.testing.assert_array_equal(Linear(4, 2, rng).bias.data, np.zeros(2))

    def test_seeded_init_reproducible(self):
        a = Linear(4, 4, np.random.default_rng(5))
        b = Linear(4, 4, np.random.default_rng(5))
        np.testing.assert_array_equal(a.weight.data, b.weight.data)

    def test_repr(self, rng):
        assert "in=3" in repr(Linear(3, 7, rng))

    def test_gradients_flow(self, rng):
        layer = Linear(3, 2, rng)
        layer(Tensor(rng.normal(size=(4, 3)))).sum().backward()
        assert layer.weight.grad is not None and layer.bias.grad is not None


class TestDropout:
    def test_identity_in_eval(self, rng):
        d = Dropout(0.5)
        d.eval()
        x = Tensor(rng.normal(size=(4, 4)))
        assert d(x, rng) is x

    def test_identity_without_rng(self, rng):
        d = Dropout(0.5)
        x = Tensor(rng.normal(size=(4, 4)))
        assert d(x) is x  # no RNG supplied -> deterministic passthrough

    def test_training_mode_drops(self):
        d = Dropout(0.5)
        rng = np.random.default_rng(0)
        out = d(Tensor(np.ones(1000)), rng)
        assert np.any(out.data == 0.0)

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            Dropout(1.0)
        with pytest.raises(ValueError):
            Dropout(-0.1)

    def test_zero_probability_identity(self, rng):
        d = Dropout(0.0)
        x = Tensor(rng.normal(size=3))
        assert d(x, rng) is x


class TestActivationsAndSequential:
    def test_relu_module(self, rng):
        out = ReLU()(Tensor(np.array([-1.0, 2.0])))
        np.testing.assert_allclose(out.data, [0.0, 2.0])

    def test_leaky_relu_module(self):
        out = LeakyReLU(0.5)(Tensor(np.array([-2.0])))
        np.testing.assert_allclose(out.data, [-1.0])

    def test_elu_module(self):
        out = ELU(1.0)(Tensor(np.array([0.0])))
        np.testing.assert_allclose(out.data, [0.0])

    def test_tanh_module(self):
        out = Tanh()(Tensor(np.array([100.0])))
        np.testing.assert_allclose(out.data, [1.0], atol=1e-12)

    def test_identity_module(self, rng):
        x = Tensor(rng.normal(size=4))
        assert Identity()(x) is x

    def test_sequential_chains(self, rng):
        seq = Sequential(Linear(4, 8, rng), ReLU(), Linear(8, 2, rng))
        assert seq(Tensor(rng.normal(size=(5, 4)))).shape == (5, 2)

    def test_sequential_len_and_index(self, rng):
        seq = Sequential(Linear(2, 2, rng), ReLU())
        assert len(seq) == 2
        assert isinstance(seq[1], ReLU)

    def test_sequential_params_from_children(self, rng):
        seq = Sequential(Linear(2, 3, rng), ReLU(), Linear(3, 1, rng))
        names = [n for n, _ in seq.named_parameters()]
        assert names == ["0.weight", "0.bias", "2.weight", "2.bias"]
