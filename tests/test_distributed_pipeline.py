"""Tests for the communicator-based Phase-1/2 pipeline.

The load-bearing property is the determinism contract: the comm pipeline
must produce the *same pool* as the serial executor for the same
``(arch, graph, base_seed)`` regardless of world size — the paper's
zero-communication training is reproducible across cluster layouts.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.distributed import train_ingredients, train_ingredients_comm, uniform_soup_allreduce
from repro.soup import uniform_soup
from repro.soup.state import average
from repro.train import TrainConfig


FAST = TrainConfig(epochs=8, lr=0.02)


@pytest.fixture(scope="module")
def comm_report(tiny_graph):
    """One comm-pipeline run shared by the equivalence tests below."""
    return train_ingredients_comm(
        "gcn", tiny_graph, n_ingredients=5, train_cfg=FAST, base_seed=3, num_workers=2, hidden_dim=16
    )


class TestPipelineDeterminism:
    def test_pool_matches_serial_executor(self, tiny_graph, comm_report):
        serial = train_ingredients(
            "gcn", tiny_graph, n_ingredients=5, train_cfg=FAST, base_seed=3, hidden_dim=16
        )
        assert len(comm_report.pool) == len(serial)
        assert comm_report.pool.val_accs == serial.val_accs
        for sd_comm, sd_serial in zip(comm_report.pool.states, serial.states):
            assert sd_comm.keys() == sd_serial.keys()
            for name in sd_comm:
                np.testing.assert_array_equal(sd_comm[name], sd_serial[name])

    def test_world_size_does_not_change_pool(self, tiny_graph, comm_report):
        wide = train_ingredients_comm(
            "gcn", tiny_graph, n_ingredients=5, train_cfg=FAST, base_seed=3, num_workers=4, hidden_dim=16
        )
        for sd_a, sd_b in zip(comm_report.pool.states, wide.pool.states):
            for name in sd_a:
                np.testing.assert_array_equal(sd_a[name], sd_b[name])

    def test_pool_order_is_ingredient_order(self, comm_report):
        """results arrive tagged by task id, so pool index == ingredient index."""
        assert len(comm_report.pool.states) == 5
        # seeds differ per index, so adjacent ingredients cannot be identical
        flat0 = np.concatenate([v.ravel() for v in comm_report.pool.states[0].values()])
        flat1 = np.concatenate([v.ravel() for v in comm_report.pool.states[1].values()])
        assert not np.array_equal(flat0, flat1)


class TestPipelineScheduling:
    def test_every_ingredient_trained_exactly_once(self, comm_report):
        assert sum(comm_report.tasks_per_worker.values()) == 5

    def test_coordinator_never_trains(self, comm_report):
        assert 0 not in comm_report.tasks_per_worker

    def test_dynamic_queue_uses_multiple_workers(self, tiny_graph):
        """With more tasks than workers, no worker can be starved to zero
        unless another worker absorbed everything (possible but both-zero
        is impossible)."""
        report = train_ingredients_comm(
            "gcn", tiny_graph, n_ingredients=6, train_cfg=FAST, base_seed=1, num_workers=2, hidden_dim=8
        )
        counts = list(report.tasks_per_worker.values())
        assert sum(counts) == 6
        assert max(counts) >= 3  # pigeonhole on two workers

    def test_schedule_attached_to_pool(self, comm_report):
        assert comm_report.pool.schedule is not None
        assert comm_report.pool.schedule.num_workers == comm_report.num_workers

    def test_rejects_bad_arguments(self, tiny_graph):
        with pytest.raises(ValueError, match="ingredient"):
            train_ingredients_comm("gcn", tiny_graph, n_ingredients=0, num_workers=1)
        with pytest.raises(ValueError, match="worker"):
            train_ingredients_comm("gcn", tiny_graph, n_ingredients=1, num_workers=0)


class TestUniformSoupAllreduce:
    def test_matches_state_average(self, gcn_pool):
        souped = uniform_soup_allreduce(gcn_pool, num_workers=2)
        reference = average(gcn_pool.states)
        assert souped.keys() == reference.keys()
        for name in souped:
            np.testing.assert_allclose(souped[name], reference[name], rtol=1e-12, atol=1e-12)

    def test_matches_uniform_soup_method(self, gcn_pool, tiny_graph):
        souped = uniform_soup_allreduce(gcn_pool, num_workers=3)
        result = uniform_soup(gcn_pool, tiny_graph)
        for name in souped:
            np.testing.assert_allclose(souped[name], result.state_dict[name], atol=1e-12)

    def test_world_size_capped_at_pool_size(self, gcn_pool):
        """More workers than ingredients must not break the reduction."""
        souped = uniform_soup_allreduce(gcn_pool, num_workers=64)
        reference = average(gcn_pool.states)
        for name in souped:
            np.testing.assert_allclose(souped[name], reference[name], atol=1e-12)

    def test_default_world_is_one_rank_per_ingredient(self, gcn_pool):
        souped = uniform_soup_allreduce(gcn_pool)
        reference = average(gcn_pool.states)
        for name in souped:
            np.testing.assert_allclose(souped[name], reference[name], atol=1e-12)
