"""Resilient scheduler: stragglers, fail-stop workers, requeue semantics.

Safety assertions only — list scheduling under heterogeneity has genuine
anomalies (a straggler's death can *reduce* makespan), so the tests pin
conservation laws and bounds rather than monotonicity folklore.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributed import (
    ResilientPoolSimulator,
    SchedulingError,
    WorkerPoolSimulator,
    WorkerSpec,
)


durations_strategy = st.lists(
    st.floats(min_value=0.01, max_value=20.0, allow_nan=False), min_size=1, max_size=20
)


class TestEquivalenceWithIdealScheduler:
    @settings(max_examples=60, deadline=None)
    @given(durations=durations_strategy, w=st.integers(min_value=1, max_value=6))
    def test_unit_speed_no_failures_matches_ideal(self, durations, w):
        """With reliable unit-speed workers the resilient simulator IS the
        ideal list scheduler — same makespan, same assignment."""
        ideal = WorkerPoolSimulator(w).schedule(durations)
        resilient = ResilientPoolSimulator(w).schedule(durations)
        assert resilient.makespan == pytest.approx(ideal.makespan)
        np.testing.assert_array_equal(resilient.worker_of_task, ideal.worker_of_task)
        np.testing.assert_allclose(resilient.worker_busy, ideal.worker_busy)
        assert resilient.wasted_work == 0.0
        assert np.all(resilient.attempts == 1)

    def test_int_shorthand_builds_unit_workers(self):
        sim = ResilientPoolSimulator(3)
        assert all(ws.speed == 1.0 and ws.fail_at is None for ws in sim.workers)


class TestHeterogeneousSpeeds:
    def test_fast_worker_finishes_sooner(self):
        sched = ResilientPoolSimulator([WorkerSpec(speed=2.0)]).schedule([10.0])
        assert sched.makespan == pytest.approx(5.0)

    def test_straggler_half_speed(self):
        sched = ResilientPoolSimulator([WorkerSpec(speed=0.5)]).schedule([10.0])
        assert sched.makespan == pytest.approx(20.0)

    def test_dynamic_queue_feeds_fast_worker_more_tasks(self):
        """Ten equal tasks on speeds (4, 1): the fast worker should complete
        the lion's share — the dynamic queue's whole point."""
        workers = [WorkerSpec(speed=4.0), WorkerSpec(speed=1.0)]
        sched = ResilientPoolSimulator(workers).schedule(np.ones(10))
        fast_count = int(np.sum(sched.worker_of_task == 0))
        assert fast_count >= 7

    @settings(max_examples=60, deadline=None)
    @given(
        durations=durations_strategy,
        speeds=st.lists(st.floats(min_value=0.2, max_value=5.0), min_size=1, max_size=4),
    )
    def test_lower_bounds_hold(self, durations, speeds):
        workers = [WorkerSpec(speed=s) for s in speeds]
        sched = ResilientPoolSimulator(workers).schedule(durations)
        total, fastest = float(np.sum(durations)), max(speeds)
        assert sched.makespan >= total / sum(speeds) - 1e-9  # perfect-packing bound
        assert sched.makespan >= max(durations) / fastest - 1e-9  # longest-task bound
        assert sched.wasted_work == 0.0

    @settings(max_examples=60, deadline=None)
    @given(durations=durations_strategy, w=st.integers(min_value=1, max_value=6))
    def test_graham_bound_unit_speeds(self, durations, w):
        """List scheduling: makespan <= total/W + (1 - 1/W) * max duration."""
        sched = ResilientPoolSimulator(w).schedule(durations)
        total, longest = float(np.sum(durations)), float(np.max(durations))
        assert sched.makespan <= total / w + (1 - 1 / w) * longest + 1e-9


class TestFailStop:
    def test_mid_task_failure_requeues_and_wastes(self):
        """One worker dies at t=3 while running a 10s task; the survivor
        retrains the lost ingredient after its own work."""
        workers = [WorkerSpec(fail_at=3.0), WorkerSpec()]
        sched = ResilientPoolSimulator(workers).schedule([10.0, 2.0])
        assert sched.dead_workers == (0,)
        assert sched.wasted_work == pytest.approx(3.0)
        assert sched.attempts[0] == 2  # first attempt died
        assert sched.worker_of_task[0] == 1  # survivor completed it
        # survivor: task1 (0..2), idles until the death is observable at
        # t=3, then retrains task0 (3..13)
        assert sched.makespan == pytest.approx(13.0)
        assert sched.start_times[0] == pytest.approx(3.0)

    def test_idle_death_wastes_nothing(self):
        """A worker that dies after finishing its last task wastes no work."""
        workers = [WorkerSpec(fail_at=100.0), WorkerSpec()]
        sched = ResilientPoolSimulator(workers).schedule([1.0, 1.0])
        assert sched.wasted_work == 0.0
        assert sched.makespan == pytest.approx(1.0)

    def test_dead_at_zero_never_runs(self):
        workers = [WorkerSpec(fail_at=0.0), WorkerSpec()]
        sched = ResilientPoolSimulator(workers).schedule([4.0, 4.0])
        assert sched.worker_busy[0] == 0.0
        assert sched.dead_workers == (0,)
        assert sched.makespan == pytest.approx(8.0)  # survivor runs both

    def test_all_workers_dead_raises(self):
        workers = [WorkerSpec(fail_at=1.0), WorkerSpec(fail_at=2.0)]
        with pytest.raises(SchedulingError, match="dead"):
            ResilientPoolSimulator(workers).schedule([10.0, 10.0, 10.0])

    def test_repeated_failures_same_task(self):
        """Two workers die on the same long task before a reliable one lands it."""
        workers = [WorkerSpec(fail_at=1.0), WorkerSpec(fail_at=2.0), WorkerSpec(speed=1.0)]
        sched = ResilientPoolSimulator(workers).schedule([100.0, 0.5, 0.5])
        assert sched.attempts[0] >= 2
        assert sched.worker_of_task[0] == 2
        assert set(sched.dead_workers) == {0, 1}

    @settings(max_examples=60, deadline=None)
    @given(
        durations=durations_strategy,
        fail_at=st.floats(min_value=0.0, max_value=30.0),
    )
    def test_conservation_laws_under_single_failure(self, durations, fail_at):
        """Whatever the failure point: every task completes exactly once,
        busy time = useful + wasted, and no task ran on the dead worker
        after its death."""
        workers = [WorkerSpec(fail_at=fail_at), WorkerSpec(), WorkerSpec()]
        sched = ResilientPoolSimulator(workers).schedule(durations)
        assert np.all(sched.worker_of_task >= 0)
        assert np.all(np.isfinite(sched.end_times))
        assert np.all(sched.attempts >= 1)
        useful = float(np.sum(sched.durations))  # unit speeds: runtime == duration
        assert float(sched.worker_busy.sum()) == pytest.approx(useful + sched.wasted_work)
        # the dead worker never reports busy time past its failure
        if 0 in sched.dead_workers:
            assert sched.worker_busy[0] <= fail_at + 1e-9
        # successful attempts on worker 0 all ended before the failure
        on_dead = sched.worker_of_task == 0
        if on_dead.any():
            assert np.nanmax(sched.end_times[on_dead]) <= fail_at + 1e-9

    def test_retries_counted(self):
        workers = [WorkerSpec(fail_at=0.5), WorkerSpec()]
        sched = ResilientPoolSimulator(workers).schedule([2.0, 2.0])
        assert sched.total_retries == sched.attempts.sum() - len(sched.attempts)
        assert sched.total_retries >= 1


class TestValidation:
    def test_bad_speed_rejected(self):
        with pytest.raises(ValueError, match="speed"):
            WorkerSpec(speed=0.0)

    def test_bad_fail_at_rejected(self):
        with pytest.raises(ValueError, match="fail_at"):
            WorkerSpec(fail_at=-1.0)

    def test_empty_worker_list_rejected(self):
        with pytest.raises(ValueError, match="worker"):
            ResilientPoolSimulator([])

    def test_empty_durations_rejected(self):
        with pytest.raises(ValueError, match="durations"):
            ResilientPoolSimulator(2).schedule([])

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            ResilientPoolSimulator(2).schedule([1.0, -0.1])

    def test_nan_duration_rejected(self):
        with pytest.raises(ValueError, match="finite"):
            ResilientPoolSimulator(2).schedule([1.0, np.nan])


class TestUtilization:
    def test_perfect_packing_is_full_utilization(self):
        sched = ResilientPoolSimulator(2).schedule([3.0, 3.0])
        assert sched.utilization == pytest.approx(1.0)

    def test_dead_worker_horizon_clipped(self):
        """Utilisation denominator counts a dead worker only until death."""
        workers = [WorkerSpec(fail_at=1.0), WorkerSpec()]
        sched = ResilientPoolSimulator(workers).schedule([1.0, 5.0])
        assert 0.0 < sched.utilization <= 1.0
