"""Optimizers: update-rule exactness and convergence behaviour."""

from __future__ import annotations

import numpy as np
import pytest

from repro.optim import SGD, Adam, AdamW
from repro.tensor import Tensor


def param(value):
    return Tensor(np.asarray(value, dtype=np.float64), requires_grad=True)


def quadratic_step(p):
    """Set p.grad for loss = 0.5 * ||p||^2 (gradient = p)."""
    p.grad = p.data.copy()


class TestSGD:
    def test_vanilla_update(self):
        p = param([1.0, -2.0])
        p.grad = np.array([0.5, 0.5])
        SGD([p], lr=0.1).step()
        np.testing.assert_allclose(p.data, [0.95, -2.05])

    def test_weight_decay_coupled(self):
        p = param([2.0])
        p.grad = np.array([0.0])
        SGD([p], lr=0.1, weight_decay=0.5).step()
        np.testing.assert_allclose(p.data, [2.0 - 0.1 * 0.5 * 2.0])

    def test_momentum_accumulates(self):
        p = param([0.0])
        opt = SGD([p], lr=1.0, momentum=0.9)
        p.grad = np.array([1.0])
        opt.step()  # v=1, p=-1
        np.testing.assert_allclose(p.data, [-1.0])
        p.grad = np.array([1.0])
        opt.step()  # v=1.9, p=-2.9
        np.testing.assert_allclose(p.data, [-2.9])

    def test_nesterov_differs_from_plain_momentum(self):
        p1, p2 = param([0.0]), param([0.0])
        o1 = SGD([p1], lr=1.0, momentum=0.9)
        o2 = SGD([p2], lr=1.0, momentum=0.9, nesterov=True)
        for o, p in ((o1, p1), (o2, p2)):
            p.grad = np.array([1.0])
            o.step()
            p.grad = np.array([1.0])
            o.step()
        assert p1.data[0] != p2.data[0]

    def test_nesterov_requires_momentum(self):
        with pytest.raises(ValueError):
            SGD([param([1.0])], lr=0.1, nesterov=True)

    def test_none_grad_skipped(self):
        p = param([1.0])
        SGD([p], lr=0.1).step()
        np.testing.assert_allclose(p.data, [1.0])

    def test_zero_grad(self):
        p = param([1.0])
        p.grad = np.ones(1)
        opt = SGD([p], lr=0.1)
        opt.zero_grad()
        assert p.grad is None

    def test_converges_on_quadratic(self):
        p = param([5.0, -3.0])
        opt = SGD([p], lr=0.1, momentum=0.5)
        for _ in range(200):
            quadratic_step(p)
            opt.step()
        assert np.abs(p.data).max() < 1e-6

    def test_empty_params_raises(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_bad_lr_raises(self):
        with pytest.raises(ValueError):
            SGD([param([1.0])], lr=0.0)


class TestAdam:
    def test_first_step_magnitude_is_lr(self):
        # with bias correction the first Adam step is ~lr regardless of grad scale
        p = param([0.0])
        opt = Adam([p], lr=0.01)
        p.grad = np.array([123.0])
        opt.step()
        np.testing.assert_allclose(np.abs(p.data), [0.01], rtol=1e-5)

    def test_matches_reference_two_steps(self):
        # hand-computed Adam trace: lr=0.1, grads 1 then 2
        p = param([0.0])
        opt = Adam([p], lr=0.1)
        p.grad = np.array([1.0])
        opt.step()
        x1 = p.data[0]
        p.grad = np.array([2.0])
        opt.step()
        m = 0.9 * 0.1 + 0.1 * 2.0
        v = 0.999 * 0.001 + 0.001 * 4.0
        mhat = m / (1 - 0.9**2)
        vhat = v / (1 - 0.999**2)
        expected = x1 - 0.1 * mhat / (np.sqrt(vhat) + 1e-8)
        np.testing.assert_allclose(p.data, [expected], rtol=1e-10)

    def test_converges_on_quadratic(self):
        p = param([4.0, -4.0])
        opt = Adam([p], lr=0.2)
        for _ in range(300):
            quadratic_step(p)
            opt.step()
        assert np.abs(p.data).max() < 1e-3

    def test_weight_decay_coupled_affects_grad(self):
        p1, p2 = param([1.0]), param([1.0])
        o1, o2 = Adam([p1], lr=0.1), Adam([p2], lr=0.1, weight_decay=1.0)
        for o, p in ((o1, p1), (o2, p2)):
            p.grad = np.array([0.5])
            o.step()
        assert p2.data[0] != p1.data[0]


class TestAdamW:
    def test_decay_is_decoupled(self):
        # with zero gradient, AdamW still shrinks weights by lr*wd*w exactly
        p = param([2.0])
        opt = AdamW([p], lr=0.1, weight_decay=0.5)
        p.grad = np.array([0.0])
        opt.step()
        np.testing.assert_allclose(p.data, [2.0 - 0.1 * 0.5 * 2.0])

    def test_differs_from_adam_with_same_settings(self):
        pa, pw = param([1.0]), param([1.0])
        oa = Adam([pa], lr=0.1, weight_decay=0.5)
        ow = AdamW([pw], lr=0.1, weight_decay=0.5)
        for o, p in ((oa, pa), (ow, pw)):
            p.grad = np.array([1.0])
            o.step()
        assert pa.data[0] != pw.data[0]

    def test_weight_decay_setting_preserved_after_step(self):
        p = param([1.0])
        opt = AdamW([p], lr=0.1, weight_decay=0.3)
        p.grad = np.array([1.0])
        opt.step()
        assert opt.weight_decay == 0.3

    def test_converges_on_quadratic(self):
        p = param([3.0])
        opt = AdamW([p], lr=0.2, weight_decay=0.01)
        for _ in range(300):
            quadratic_step(p)
            opt.step()
        assert abs(p.data[0]) < 1e-2


class TestOptimizerState:
    """state_dict / load_state_dict round-trips (the per-epoch checkpoint
    contract: a restored optimizer continues bit-identically)."""

    def _identical_trajectories(self, make_opt, steps_before=3, steps_after=4):
        rng = np.random.default_rng(0)
        grads = rng.normal(size=(steps_before + steps_after, 2))
        p_ref, p_res = param([1.0, -2.0]), param([1.0, -2.0])
        ref, res = make_opt(p_ref), make_opt(p_res)
        for g in grads[:steps_before]:
            for p, o in ((p_ref, ref), (p_res, res)):
                p.grad = g.copy()
                o.step()
        # serialize / restore into a *fresh* optimizer over the same params
        state = res.state_dict()
        restored = make_opt(p_res)
        restored.load_state_dict(state)
        for g in grads[steps_before:]:
            for p, o in ((p_ref, ref), (p_res, restored)):
                p.grad = g.copy()
                o.step()
        np.testing.assert_array_equal(p_ref.data, p_res.data)

    def test_sgd_round_trip(self):
        self._identical_trajectories(lambda p: SGD([p], lr=0.1, momentum=0.9, weight_decay=0.01))

    def test_sgd_round_trip_before_first_step(self):
        """Velocity slots are still None before step(); the None mask must
        survive the round trip."""
        p = param([1.0])
        opt = SGD([p], lr=0.1, momentum=0.9)
        state = opt.state_dict()
        assert state["velocity"] == [None]
        SGD([p], lr=0.1, momentum=0.9).load_state_dict(state)

    def test_adam_round_trip(self):
        self._identical_trajectories(lambda p: Adam([p], lr=0.05, weight_decay=0.01))

    def test_adamw_round_trip(self):
        self._identical_trajectories(lambda p: AdamW([p], lr=0.05, weight_decay=0.1))

    def test_state_dict_is_a_copy(self):
        p = param([1.0])
        opt = Adam([p], lr=0.1)
        p.grad = np.array([1.0])
        opt.step()
        state = opt.state_dict()
        state["m"][0][:] = 99.0
        assert opt._m[0][0] != 99.0

    def test_lr_restored(self):
        p = param([1.0])
        opt = SGD([p], lr=0.1)
        opt.lr = 0.025  # a scheduler moved it
        other = SGD([p], lr=0.1)
        other.load_state_dict(opt.state_dict())
        assert other.lr == 0.025

    def test_mismatched_param_list_rejected(self):
        p1, p2 = param([1.0]), param([1.0, 2.0])
        state = Adam([p1], lr=0.1).state_dict()
        with pytest.raises(ValueError):
            Adam([p1, p2], lr=0.1).load_state_dict(state)
