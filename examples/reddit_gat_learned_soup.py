#!/usr/bin/env python3
"""The paper's headline LS scenario: Reddit + GAT.

Abstract claim: "achieving up to 1.2% accuracy improvement and 2.1X
speedup" — Learned Souping against Greedy Interpolated Souping on the
Reddit dataset with the GAT architecture.

This script reproduces the *comparison* on the synthetic Reddit analogue:
train a pool of GAT ingredients, soup with GIS and LS, and report the
accuracy delta and relative speedup. Absolute numbers differ from the
paper (CPU + scaled graph); the relationship LS >= GIS accuracy at a
fraction of the time is what reproduces.

Run:  python examples/reddit_gat_learned_soup.py
"""

import numpy as np

from repro import load_dataset
from repro.distributed import train_ingredients
from repro.soup import SoupConfig, gis_soup, learned_soup, uniform_soup
from repro.train import TrainConfig


def main() -> None:
    graph = load_dataset("reddit", seed=0, scale=0.4)
    print(f"dataset: {graph}")

    pool = train_ingredients(
        "gat",
        graph,
        n_ingredients=6,
        train_cfg=TrainConfig(epochs=55, lr=0.02),
        base_seed=0,
        hidden_dim=8,
        num_heads=2,
        dropout=0.2,  # GAT needs low feature dropout on the noisy analogues
        epoch_jitter=10,
    )
    print(
        f"GAT ingredients: test {np.mean(pool.test_accs):.4f} ± {np.std(pool.test_accs):.4f}"
    )

    us = uniform_soup(pool, graph)
    gis = gis_soup(pool, graph, granularity=20)
    # early stopping (a §VI-A suggestion implemented here) ends the alpha
    # descent once the holdout stops improving, widening the speedup
    ls = learned_soup(pool, graph, SoupConfig(epochs=30, lr=1.0, seed=0, early_stopping=8))

    print(f"\n{'method':<6} {'test acc':>9} {'time (s)':>9}")
    for r in (us, gis, ls):
        print(f"{r.method:<6} {r.test_acc:>9.4f} {r.soup_time:>9.3f}")

    speedup = gis.soup_time / ls.soup_time
    delta = (ls.test_acc - gis.test_acc) * 100
    print(
        f"\nLS vs GIS: {delta:+.2f}% accuracy, {speedup:.1f}x speedup "
        f"(paper on real Reddit/GAT: +1.2% and 2.1x)"
    )

    # the per-layer alpha picture: which ingredients did LS favour?
    weights = ls.extras["weights"]
    print("\nlearned mixing weights (rows = ingredients, cols = layers):")
    header = "        " + "  ".join(f"{g:>9}" for g in ls.extras["group_names"])
    print(header)
    for i, row in enumerate(weights):
        marker = "*" if i == pool.best_index else " "
        print(f"  M{i}{marker}  " + "  ".join(f"{w:>9.4f}" for w in row))
    print("  (* = best single ingredient by validation accuracy)")


if __name__ == "__main__":
    main()
