#!/usr/bin/env python3
"""The full souping workflow as explicit message passing (Fig. 1, both phases).

The paper runs Phase 1 on an 8-GPU NCCL clique. This example runs the
identical communication pattern on the in-process MPI-style communicator
(`repro.distributed.comm`):

* rank 0 builds the shared initialisation and **broadcasts** it,
* workers pull ingredient indices from a coordinator-served **dynamic
  task queue** (the master/worker MPI idiom) and train independently,
* trained parameters are **gathered** back to rank 0 — the paper calls
  Phase 2 "similar to a reduce operation", and for Uniform Souping it is
  literally `Allreduce(SUM) / N`, which this script verifies numerically,
* the gathered pool is then souped with LS and compared against US.

Run:  python examples/message_passing_pipeline.py
"""

import numpy as np

from repro import load_dataset
from repro.distributed import train_ingredients_comm, uniform_soup_allreduce
from repro.soup import SoupConfig, learned_soup, uniform_soup
from repro.soup.state import average
from repro.train import TrainConfig


def main() -> None:
    graph = load_dataset("flickr", seed=0, scale=0.5)
    print(f"dataset: {graph}")

    # -- Phases 1+2 over a message-passing world -----------------------------
    n_ingredients, num_workers = 8, 4
    report = train_ingredients_comm(
        "gcn",
        graph,
        n_ingredients=n_ingredients,
        train_cfg=TrainConfig(epochs=40, lr=0.01),
        base_seed=0,
        num_workers=num_workers,
    )
    pool = report.pool
    print(
        f"\nworld of {report.world_size} ranks (1 coordinator + {report.num_workers} workers) "
        f"trained {len(pool)} ingredients in {report.wall_time:.2f}s wall"
    )
    for rank, count in sorted(report.tasks_per_worker.items()):
        print(f"  worker rank {rank}: {count} ingredients via the dynamic queue")
    accs = np.asarray(pool.val_accs)
    print(f"  ingredient val acc: min {accs.min():.4f} / mean {accs.mean():.4f} / max {accs.max():.4f}")

    # -- Uniform Souping really is an allreduce ------------------------------
    souped = uniform_soup_allreduce(pool, num_workers=num_workers)
    reference = average(pool.states)
    max_err = max(float(np.abs(souped[k] - reference[k]).max()) for k in souped)
    print(f"\nallreduce(SUM)/N vs direct average: max |Δ| = {max_err:.2e} (identical)")

    # -- soup the gathered pool ----------------------------------------------
    us = uniform_soup(pool, graph)
    ls = learned_soup(pool, graph, SoupConfig(epochs=40, lr=1.0, seed=0))
    print(f"\n{'method':<10} {'val acc':>8} {'test acc':>9} {'soup time':>10}")
    for r in (us, ls):
        print(f"{r.method:<10} {r.val_acc:>8.4f} {r.test_acc:>9.4f} {r.soup_time:>9.2f}s")
    print(
        "\nnote: every arrow in the paper's Fig. 1 appeared above as an actual "
        "communicator call — bcast (shared init), send/recv (task queue), "
        "gather (ingredient collection), allreduce (uniform soup)."
    )


if __name__ == "__main__":
    main()
