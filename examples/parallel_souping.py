#!/usr/bin/env python3
"""Phase 2 in detail: the shared candidate-evaluation engine.

Phase 2 (souping) is dominated by repeated validation-set scoring of
candidate state dicts — GIS's exhaustive interpolation-ratio grid is
``(N-1)·g`` full forward passes (§III-E). This example demonstrates the
parallel souping engine introduced on top of the Phase-1 distributed
substrate:

* one :func:`repro.soup.make_evaluator` per (pool, graph) pair, with
  ``serial`` / ``thread`` / ``process`` backends behind one API;
* the process backend ships the graph AND the pool's stacked flat states
  through shared memory once, then candidates cross the process boundary
  as tiny ``[N]`` weight vectors and are mixed zero-copy in the workers;
* the determinism contract: every backend returns the bit-identical
  soup — parallelism changes wall-clock, never results;
* LS multi-restart (``SoupConfig(n_restarts=R)``): R independent alpha
  descents whose final soups are scored as one evaluator batch.

Run:  python examples/parallel_souping.py

Size knobs (the CI install-smoke job shrinks them): ``REPRO_EXAMPLE_SCALE``
(dataset multiplier, default 0.5), ``REPRO_EXAMPLE_INGREDIENTS`` (default
8), ``REPRO_EXAMPLE_EPOCHS`` (default 20), ``REPRO_EXAMPLE_GRANULARITY``
(GIS ratios, default 16), ``REPRO_EXAMPLE_SOUP_WORKERS`` (default 4).
"""

import os
import time

import numpy as np

from repro import load_dataset
from repro.distributed import train_ingredients
from repro.soup import SOUP_EXECUTORS, SoupConfig, gis_soup, learned_soup, make_evaluator
from repro.train import TrainConfig

SCALE = float(os.environ.get("REPRO_EXAMPLE_SCALE", "0.5"))
N_INGREDIENTS = int(os.environ.get("REPRO_EXAMPLE_INGREDIENTS", "8"))
EPOCHS = int(os.environ.get("REPRO_EXAMPLE_EPOCHS", "20"))
GRANULARITY = int(os.environ.get("REPRO_EXAMPLE_GRANULARITY", "16"))
SOUP_WORKERS = int(os.environ.get("REPRO_EXAMPLE_SOUP_WORKERS", "4"))


def main() -> None:
    graph = load_dataset("flickr", seed=0, scale=SCALE)
    print(f"dataset: {graph}")

    pool = train_ingredients(
        "gcn",
        graph,
        n_ingredients=N_INGREDIENTS,
        train_cfg=TrainConfig(epochs=EPOCHS, lr=0.01),
        base_seed=0,
        num_workers=SOUP_WORKERS,
    )
    print(f"pool: {N_INGREDIENTS} ingredients, mean val acc {np.mean(pool.val_accs):.4f}")

    # -- the GIS ratio grid through each backend ----------------------------
    print(f"\nGIS line search: {(N_INGREDIENTS - 1) * GRANULARITY} candidate evaluations")
    reference = None
    for backend in SOUP_EXECUTORS:
        with make_evaluator(pool, graph, backend=backend, num_workers=SOUP_WORKERS) as ev:
            # warm the backend (process: worker spawn + shm packing) so the
            # measured time is the steady-state sweep
            ev.accuracy_of(weights=np.full(N_INGREDIENTS, 1.0 / N_INGREDIENTS))
            start = time.perf_counter()
            result = gis_soup(pool, graph, granularity=GRANULARITY, evaluator=ev)
            wall = time.perf_counter() - start
        if reference is None:
            reference = result
        identical = all(
            np.array_equal(reference.state_dict[name], result.state_dict[name])
            for name in reference.state_dict
        )
        print(
            f"  {backend:<8} {wall:7.3f}s   val {result.val_acc:.4f}  "
            f"test {result.test_acc:.4f}  bit-identical to serial: {identical}"
        )
        assert identical, "the determinism contract is broken"

    # -- LS multi-restart on the shared engine ------------------------------
    restarts = max(2, SOUP_WORKERS)
    cfg = SoupConfig(epochs=max(4, EPOCHS // 4), lr=0.5, n_restarts=restarts)
    with make_evaluator(pool, graph, backend="process", num_workers=SOUP_WORKERS) as ev:
        ls = learned_soup(pool, graph, cfg, evaluator=ev)
    print(
        f"\nLS x{restarts} restarts: val accs "
        + ", ".join(f"{a:.4f}" for a in ls.extras["restart_val_accs"])
        + f" -> restart {ls.extras['best_restart']} wins (test {ls.test_acc:.4f})"
    )


if __name__ == "__main__":
    main()
