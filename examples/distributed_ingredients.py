#!/usr/bin/env python3
"""Phase 1 in detail: zero-communication distributed ingredient training.

Demonstrates §III-A of the paper:

* a shared initialisation distributed to all workers,
* dynamic task-queue scheduling when N > W (Eq. 1: T ≈ (N/W)·T_single),
* the ideal N <= W regime (Eq. 2: T = max_i T_i),
* a cluster-width sweep showing the embarrassingly-parallel speedup curve,
* determinism: the ingredient set is identical regardless of executor,
  queue discipline (work-stealing dynamic vs rounds) or graph transport
  (shared memory vs pickled payloads).

Run:  python examples/distributed_ingredients.py

Size knobs (the CI install-smoke job shrinks them): ``REPRO_EXAMPLE_SCALE``
(dataset multiplier, default 0.5), ``REPRO_EXAMPLE_INGREDIENTS`` (default
12), ``REPRO_EXAMPLE_EPOCHS`` (default 30).
"""

import os
import tempfile

import numpy as np

from repro import load_dataset
from repro.distributed import WorkerPoolSimulator, eq1_estimate, train_ingredients
from repro.train import TrainConfig

SCALE = float(os.environ.get("REPRO_EXAMPLE_SCALE", "0.5"))
N_INGREDIENTS = int(os.environ.get("REPRO_EXAMPLE_INGREDIENTS", "12"))
EPOCHS = int(os.environ.get("REPRO_EXAMPLE_EPOCHS", "30"))


def main() -> None:
    graph = load_dataset("ogbn-arxiv", seed=0, scale=SCALE)
    print(f"dataset: {graph}")

    n_ingredients = N_INGREDIENTS
    pool = train_ingredients(
        "gcn",
        graph,
        n_ingredients=n_ingredients,
        train_cfg=TrainConfig(epochs=EPOCHS, lr=0.01),
        base_seed=0,
        epoch_jitter=max(2, EPOCHS // 3),  # heterogeneous durations -> load imbalance
        num_workers=4,
    )
    durations = np.asarray(pool.train_times)
    print(
        f"\ntrained {n_ingredients} ingredients; per-task seconds: "
        f"min {durations.min():.2f} / mean {durations.mean():.2f} / max {durations.max():.2f}"
    )

    # -- the schedule the 4-worker cluster would execute --------------------
    sched = pool.schedule
    print(f"\ndynamic-queue schedule on W={sched.num_workers} workers:")
    for w in range(sched.num_workers):
        tasks = [i for i in range(n_ingredients) if sched.worker_of_task[i] == w]
        busy = sched.worker_busy[w]
        print(f"  worker {w}: tasks {tasks}  busy {busy:.2f}s")
    eq1 = eq1_estimate(n_ingredients, sched.num_workers, float(durations.mean()))
    print(
        f"  makespan {sched.makespan:.2f}s | Eq.(1) estimate {eq1:.2f}s | "
        f"utilisation {sched.utilization:.0%}"
    )

    # -- Eq. (2): enough workers -> slowest task dominates --------------------
    wide = WorkerPoolSimulator(n_ingredients).schedule(durations)
    print(
        f"\nwith W = N = {n_ingredients} workers: makespan {wide.makespan:.2f}s "
        f"== slowest ingredient {durations.max():.2f}s (Eq. 2)"
    )

    # -- scaling sweep ----------------------------------------------------------
    print(f"\n{'W':>4} {'makespan':>9} {'speedup':>8} {'util':>6}")
    seq = durations.sum()
    for w in (1, 2, 4, 8, 16):
        s = WorkerPoolSimulator(w).schedule(durations)
        print(f"{w:>4} {s.makespan:>9.2f} {seq / s.makespan:>8.2f} {s.utilization:>6.0%}")

    print(
        "\nnote: zero-communication training parallelises embarrassingly until "
        "W exceeds N — beyond that, extra workers idle (no way to split one "
        "ingredient), which is exactly why the paper trains many ingredients."
    )

    # -- real multi-core execution + determinism + fault recovery ------------
    # The determinism contract: serial, thread and process executors produce
    # bit-identical ingredients for the same base_seed — under either queue
    # discipline (work-stealing "dynamic" is the default; "rounds" is the
    # legacy fan-out) and either graph transport (one shared-memory segment
    # per pool by default, pickled payloads with shm=False). With a
    # checkpoint directory, a run that dies mid-pool resumes without
    # retraining finished ingredients, and checkpoint_every=N resumes even
    # *interrupted* ingredients from their last epoch snapshot.
    small_kw = dict(
        train_cfg=TrainConfig(epochs=max(4, EPOCHS // 3), lr=0.01), base_seed=0, num_workers=4,
    )
    reference = train_ingredients("gcn", graph, 4, executor="serial", **small_kw)
    rounds_pool = train_ingredients(
        "gcn", graph, 4, executor="process", queue="rounds", shm=False, **small_kw,
    )
    with tempfile.TemporaryDirectory() as ckpt:
        # worker for task 2 dies once (injected fault); the work-stealing
        # queue slots the retry in while the other workers keep draining
        faulted = train_ingredients(
            "gcn", graph, 4, executor="process", queue="dynamic",
            checkpoint_dir=ckpt, checkpoint_every=2, fault_plan={2: 1}, **small_kw,
        )
        resumed = train_ingredients(
            "gcn", graph, 4, executor="process",
            checkpoint_dir=ckpt, checkpoint_every=2, resume=True, **small_kw,
        )
    identical = all(
        np.array_equal(a[n], b[n]) and np.array_equal(a[n], c[n]) and np.array_equal(a[n], d[n])
        for a, b, c, d in zip(reference.states, rounds_pool.states, faulted.states, resumed.states)
        for n in a
    )
    print(
        f"\nprocess executor (dynamic queue + shared-memory graph) with 1 injected "
        f"fault + checkpoint resume: ingredients bit-identical to serial = {identical}"
    )


if __name__ == "__main__":
    main()
