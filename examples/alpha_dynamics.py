#!/usr/bin/env python3
"""Watch the interpolation weights learn: alpha dynamics under three normalisers.

§V-A explains LS's small-graph weakness through the *softmax floor*: "as
the poor-performing ingredients' interpolation ratios near zero, the
gradients they produce also shrink considerably, and the softmax function
is not able to assign a zero". This script poisons one ingredient of a
small pool and traces the weight each normaliser assigns it per epoch:

* softmax      — decays but provably never reaches zero,
* sparsemax    — hits exactly zero and stays there (off-support gradient
                 is zero, so the drop is permanent),
* softmax + entropy regularisation — the §VIII-style soft drop.

Run:  python examples/alpha_dynamics.py
"""

import numpy as np

from repro import load_dataset
from repro.distributed import IngredientPool, train_ingredients
from repro.soup import SoupConfig
from repro.soup.learned import alpha_weights, build_alpha, combine_with_alphas, split_validation
from repro.nn import cross_entropy, functional_params
from repro.optim import SGD, CosineAnnealingLR
from repro.soup.state import layer_groups
from repro.tensor import Tensor
from repro.train import TrainConfig

EPOCHS = 40


def poisoned_pool(graph) -> tuple[IngredientPool, int]:
    pool = train_ingredients(
        "gcn", graph, n_ingredients=5, train_cfg=TrainConfig(epochs=40, lr=0.01), base_seed=0
    )
    rng = np.random.default_rng(123)
    states = [dict(sd) for sd in pool.states]
    victim = len(states) - 1
    states[victim] = {k: rng.normal(0, 3.0, size=v.shape) for k, v in states[victim].items()}
    return (
        IngredientPool(
            model_config=pool.model_config,
            states=states,
            val_accs=list(pool.val_accs[:-1]) + [1.0 / graph.num_classes],
            test_accs=list(pool.test_accs),
            train_times=list(pool.train_times),
            graph_name=pool.graph_name,
        ),
        victim,
    )


def trace_poison_weight(pool, graph, victim, cfg: SoupConfig) -> list[float]:
    """One LS run, recording the poison ingredient's mean weight per epoch."""
    rng = np.random.default_rng(cfg.seed)
    model = pool.make_model()
    model.eval()
    names = pool.param_names()
    group_ids, group_names = layer_groups(names, cfg.granularity)
    group_of = {name: int(g) for name, g in zip(names, group_ids)}
    train_idx, _ = split_validation(graph, cfg.holdout_fraction, rng)
    stacks = pool.stacked_params()
    alphas = build_alpha(len(pool), len(group_names), cfg, rng)
    optimizer = SGD([alphas], lr=cfg.lr, momentum=cfg.momentum)
    scheduler = CosineAnnealingLR(optimizer, t_max=cfg.epochs)
    features = Tensor(graph.features)
    trace = []
    for _ in range(cfg.epochs):
        trace.append(float(alpha_weights(Tensor(alphas.data), cfg).data[victim].mean()))
        weights = alpha_weights(alphas, cfg)
        soup_params = combine_with_alphas(weights, stacks, group_of)
        with functional_params(model, soup_params):
            logits = model(graph, features)
        loss = cross_entropy(logits[train_idx], graph.labels[train_idx])
        if cfg.alpha_entropy_coef:
            from repro.soup.learned import entropy_penalty

            loss = loss + entropy_penalty(weights) * cfg.alpha_entropy_coef
        optimizer.zero_grad()
        loss.backward()
        optimizer.step()
        scheduler.step()
    trace.append(float(alpha_weights(Tensor(alphas.data), cfg).data[victim].mean()))
    return trace


def ascii_curve(trace: list[float], width: int = 50) -> str:
    hi = max(max(trace), 1e-12)  # normalise to the curve's own peak
    step = max(1, len(trace) // width)
    cells = "".join(
        " .:-=+*#%@"[min(9, int(9 * trace[i] / hi))] for i in range(0, len(trace), step)
    )
    return f"[{cells}]  start {trace[0]:.4f} -> end {trace[-1]:.2e}"


def main() -> None:
    graph = load_dataset("flickr", seed=0, scale=0.5)
    pool, victim = poisoned_pool(graph)
    print(f"dataset: {graph}\npool of {len(pool)} with ingredient {victim} poisoned\n")

    runs = {
        "softmax": SoupConfig(epochs=EPOCHS, lr=0.05, momentum=0.0, seed=0, holdout_fraction=0.0),
        "sparsemax": SoupConfig(
            epochs=EPOCHS, lr=0.05, momentum=0.0, seed=0, holdout_fraction=0.0,
            normalize="sparsemax", alpha_init="uniform",
        ),
        "softmax+entropy": SoupConfig(
            epochs=EPOCHS, lr=0.05, momentum=0.0, seed=0, holdout_fraction=0.0, alpha_entropy_coef=0.3
        ),
    }
    print("poison ingredient's mean weight per epoch (darker = heavier):\n")
    finals = {}
    for label, cfg in runs.items():
        trace = trace_poison_weight(pool, graph, victim, cfg)
        finals[label] = trace[-1]
        print(f"{label:<17} {ascii_curve(trace)}")

    print(
        f"\nsoftmax floor in action: softmax ends at {finals['softmax']:.2e} (> 0 forever), "
        f"entropy regularisation pushes it to {finals['softmax+entropy']:.2e}, "
        f"sparsemax reaches exactly {finals['sparsemax']:.1f}."
    )


if __name__ == "__main__":
    main()
