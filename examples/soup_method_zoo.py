#!/usr/bin/env python3
"""Every registered souping method on one pool, side by side.

One ingredient pool (GCN on the Flickr analogue), twelve ways to combine
it: the paper’s four (US / GIS / LS / PLS), Algorithm-1 greedy, the §VIII
extensions (ingredient-dropout LS, soup fine-tuning, diversity
weighting), the §II-B
related-work baselines (RADIN budget souping, sparse model soups), and
the classic ensembles soups are meant to replace (which pay N forward
passes at inference — printed for contrast).

Run:  python examples/soup_method_zoo.py
"""

import numpy as np

from repro import load_dataset
from repro.distributed import train_ingredients
from repro.soup import SOUP_METHODS, PLSConfig, SoupConfig, soup
from repro.train import TrainConfig


def main() -> None:
    graph = load_dataset("flickr", seed=0, scale=0.5)
    print(f"dataset: {graph}")

    pool = train_ingredients(
        "gcn",
        graph,
        n_ingredients=8,
        train_cfg=TrainConfig(epochs=40, lr=0.01),
        base_seed=0,
        epoch_jitter=10,
    )
    accs = np.asarray(pool.test_accs)
    print(
        f"\n{len(pool)} ingredients; test acc min {accs.min():.4f} / "
        f"mean {accs.mean():.4f} / max {accs.max():.4f}\n"
    )

    # per-method kwargs (defaults elsewhere); every method shares the pool
    kwargs = {
        "gis": dict(granularity=20),
        "ls": dict(cfg=SoupConfig(epochs=40, lr=1.0, seed=0)),
        "pls": dict(cfg=PLSConfig(epochs=40, lr=1.0, seed=0, num_partitions=16, partition_budget=4)),
        "ls-finetune": dict(cfg=SoupConfig(epochs=40, lr=1.0, seed=0), finetune_epochs=5),
        "radin": dict(eval_budget=4),
        "sparse": dict(sparsity=0.5),
    }

    print(f"{'method':<16} {'val acc':>8} {'test acc':>9} {'time (s)':>9} {'peak MB':>8}  notes")
    rows = []
    for name in SOUP_METHODS:
        result = soup(name, pool, graph, **kwargs.get(name, {}))
        note = ""
        if name == "radin":
            note = f"{result.extras['forward_passes']} forward passes (GIS: {len(pool) * 20})"
        elif name == "sparse":
            note = f"{result.extras['sparsity_achieved']:.0%} weights exactly zero"
        elif name.startswith("ensemble"):
            note = f"inference = {len(pool)} models (what soups avoid)"
        elif name == "pls":
            note = f"R/K = {kwargs['pls']['cfg'].partition_ratio:.2f} of the graph per epoch"
        rows.append((name, result))
        print(
            f"{name:<16} {result.val_acc:>8.4f} {result.test_acc:>9.4f} "
            f"{result.soup_time:>9.3f} {result.peak_memory / 1e6:>8.2f}  {note}"
        )

    best = max(rows, key=lambda r: r[1].test_acc)
    print(
        f"\nbest on test: {best[0]} at {best[1].test_acc:.4f} "
        f"(vs best single ingredient {accs.max():.4f})"
    )
    print(
        "every soup above is ONE model at inference time — the ensembles "
        "are the only rows that stay N-times as expensive."
    )


if __name__ == "__main__":
    main()
