#!/usr/bin/env python3
"""§VI-B study: how the PLS partition ratio R/K trades memory for accuracy.

Sweeps R at fixed K on one dataset and prints the trade-off curve the
paper discusses: memory tracks ~R/K, tiny R starves subgraph diversity
(C(K,R) combinations; R=1 additionally loses every cut edge), and a
mid-range ratio matches full-graph LS accuracy at a fraction of the
footprint.

Run:  python examples/partition_ratio_study.py
"""

import numpy as np

from repro import load_dataset
from repro.distributed import train_ingredients
from repro.graph import partition_graph
from repro.graph.sampling import num_possible_subgraphs
from repro.soup import PLSConfig, SoupConfig, learned_soup, partition_learned_soup
from repro.train import TrainConfig


def main() -> None:
    graph = load_dataset("ogbn-products", seed=0, scale=0.4)
    print(f"dataset: {graph}")

    pool = train_ingredients(
        "gcn",
        graph,
        n_ingredients=6,
        train_cfg=TrainConfig(epochs=30, lr=0.01),
        base_seed=0,
        epoch_jitter=8,
    )
    print(f"ingredients: test {np.mean(pool.test_accs):.4f} ± {np.std(pool.test_accs):.4f}")

    K = 16
    partition = partition_graph(graph, K, method="metis", node_weights="val", seed=0)
    print(f"K = {K} partitions, {partition.cut_edges} cut edges\n")

    ls = learned_soup(pool, graph, SoupConfig(epochs=30, lr=1.0, seed=0))
    print(f"{'setting':<12} {'C(K,R)':>12} {'test acc':>9} {'peak MB':>8} {'time (s)':>9}")
    print(f"{'LS (full)':<12} {'-':>12} {ls.test_acc:>9.4f} {ls.peak_memory / 1e6:>8.2f} {ls.soup_time:>9.3f}")

    for r in (1, 2, 4, 8, 16):
        cfg = PLSConfig(epochs=30, lr=1.0, num_partitions=K, partition_budget=r, seed=0)
        res = partition_learned_soup(pool, graph, cfg, partition=partition)
        label = f"PLS R={r}"
        print(
            f"{label:<12} {num_possible_subgraphs(K, r):>12,} {res.test_acc:>9.4f} "
            f"{res.peak_memory / 1e6:>8.2f} {res.soup_time:>9.3f}"
        )

    print(
        "\nreading the curve: peak memory grows with R (≈ R/K of LS at the "
        "top); R=1 has no cut edges and only K distinct subgraphs — the "
        "degradation case; mid-range R matches LS accuracy far cheaper "
        "(the paper recommends R/K = 8/32)."
    )


if __name__ == "__main__":
    main()
