#!/usr/bin/env python3
"""The paper's headline PLS scenario: ogbn-products + GraphSAGE.

Abstract claim: "On the ogbn-products dataset with GraphSAGE, partition
learned souping achieves a 24.5X speedup and a 76% memory reduction
without compromising accuracy."

This script reproduces that comparison on the synthetic products analogue:
GIS vs LS vs PLS on a GraphSAGE ingredient pool, reporting accuracy,
relative speedup over GIS and peak-memory reduction, plus the R/K memory
scaling §VI-B discusses.

Run:  python examples/products_sage_partition_soup.py
"""

import numpy as np

from repro import load_dataset
from repro.distributed import train_ingredients
from repro.graph import partition_graph
from repro.soup import PLSConfig, SoupConfig, gis_soup, learned_soup, partition_learned_soup
from repro.train import TrainConfig


def main() -> None:
    graph = load_dataset("ogbn-products", seed=0, scale=0.5)
    print(f"dataset: {graph}")

    pool = train_ingredients(
        "sage",
        graph,
        n_ingredients=8,
        train_cfg=TrainConfig(epochs=90, lr=0.01, weight_decay=5e-3),
        base_seed=0,
        dropout=0.3,  # the cross-validated SAGE recipe on the noisy analogues
        epoch_jitter=20,
    )
    print(f"SAGE ingredients: test {np.mean(pool.test_accs):.4f} ± {np.std(pool.test_accs):.4f}")

    # preprocessing: METIS-style partitioning balanced on validation nodes
    K, R = 32, 8
    partition = partition_graph(graph, K, method="metis", node_weights="val", seed=0)
    print(
        f"partitioned into K={K} parts: {partition.cut_edges} cut edges, "
        f"imbalance {partition.imbalance:.3f}"
    )

    gis = gis_soup(pool, graph, granularity=20)
    ls = learned_soup(pool, graph, SoupConfig(epochs=40, lr=1.0, seed=0))
    pls = partition_learned_soup(
        pool,
        graph,
        PLSConfig(epochs=40, lr=1.0, num_partitions=K, partition_budget=R, seed=0),
        partition=partition,
    )

    print(f"\n{'method':<6} {'test acc':>9} {'time (s)':>9} {'peak MB':>9}")
    for r in (gis, ls, pls):
        print(f"{r.method:<6} {r.test_acc:>9.4f} {r.soup_time:>9.3f} {r.peak_memory / 1e6:>9.2f}")

    speedup = gis.soup_time / pls.soup_time
    mem_red = (1.0 - pls.peak_memory / ls.peak_memory) * 100
    acc_delta = (pls.test_acc - gis.test_acc) * 100
    print(
        f"\nPLS vs GIS: {speedup:.1f}x speedup; "
        f"PLS vs LS: {mem_red:.0f}% memory reduction; "
        f"accuracy delta vs GIS: {acc_delta:+.2f}% "
        f"(paper: 24.5x, 76%, 'without compromising accuracy')"
    )
    print(
        f"R/K = {R}/{K} = {R/K:.2f}; possible epoch subgraphs C(K,R) = "
        f"{pls.extras['subgraph_diversity']:,}"
    )


if __name__ == "__main__":
    main()
