#!/usr/bin/env python3
"""Quickstart: the whole paper pipeline in ~30 seconds.

1. Load a (synthetic) benchmark graph.
2. Phase 1 — train N ingredient GNNs from one shared initialisation with
   zero inter-worker communication.
3. Phase 2 — mix them with every souping algorithm the paper evaluates:
   Uniform (US), Greedy, Greedy Interpolated (GIS), Learned (LS) and
   Partition Learned (PLS).
4. Compare accuracy / souping time / peak souping memory.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import load_dataset
from repro.distributed import train_ingredients
from repro.soup import PLSConfig, SoupConfig, soup
from repro.train import TrainConfig


def main() -> None:
    # -- data -------------------------------------------------------------
    graph = load_dataset("flickr", seed=0, scale=0.5)
    print(f"dataset: {graph}")

    # -- phase 1: zero-communication ingredients ---------------------------
    pool = train_ingredients(
        "gcn",
        graph,
        n_ingredients=6,
        train_cfg=TrainConfig(epochs=40, lr=0.01),
        base_seed=0,
        epoch_jitter=10,  # heterogeneous ingredient quality, as in real runs
        num_workers=8,
    )
    print(
        f"\ningredients: test acc {np.mean(pool.test_accs):.4f} "
        f"± {np.std(pool.test_accs):.4f} "
        f"(best {max(pool.test_accs):.4f}, worst {min(pool.test_accs):.4f})"
    )
    sched = pool.schedule
    print(
        f"phase-1 schedule: {sum(pool.train_times):.2f}s of work -> "
        f"{sched.makespan:.2f}s makespan on {sched.num_workers} simulated workers "
        f"({sched.utilization:.0%} utilisation)"
    )

    # -- phase 2: souping ---------------------------------------------------
    print(f"\n{'method':<8} {'val acc':>8} {'test acc':>9} {'time (s)':>9} {'peak MB':>8}")
    runs = [
        ("us", {}),
        ("greedy", {}),
        ("gis", dict(granularity=20)),
        ("ls", dict(cfg=SoupConfig(epochs=30, lr=1.0, seed=0))),
        ("pls", dict(cfg=PLSConfig(epochs=30, lr=1.0, num_partitions=16, partition_budget=4, seed=0))),
    ]
    for method, kwargs in runs:
        result = soup(method, pool, graph, **kwargs)
        print(
            f"{method:<8} {result.val_acc:>8.4f} {result.test_acc:>9.4f} "
            f"{result.soup_time:>9.3f} {result.peak_memory / 1e6:>8.2f}"
        )

    print(
        "\nexpected shape (cf. paper Tables II/III, Fig 4): informed soups >= "
        "ingredient mean; US fastest; LS/PLS faster than GIS; PLS lightest of "
        "the learned methods."
    )


if __name__ == "__main__":
    main()
